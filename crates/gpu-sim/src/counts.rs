//! Event counts gathered during functional interpretation of one CTA.
//!
//! These are the inputs to the analytic timing model: the interpreter
//! observes *what* the kernel does (issue slots, memory transactions, bank
//! conflicts, cache behavior, barrier waits) and `timing` turns that into
//! cycles using the architecture parameters.


/// Aggregate event counts for one CTA execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventCounts {
    /// Total issue slots (warp-instructions, with multi-slot expansions).
    pub issue_slots: u64,
    /// Issue slots on the double-precision pipe.
    pub dp_slots: u64,
    /// DP slots whose operand reads the constant cache (§6.1 limit).
    pub dp_const_slots: u64,
    /// Double-precision FLOPs performed (lanes * per-lane flops).
    pub flops: u64,
    /// Shared-memory warp accesses, *including* bank-conflict replays.
    pub shared_accesses: u64,
    /// Bank-conflict replays alone (diagnostics).
    pub shared_conflicts: u64,
    /// 128-byte global-memory transactions (coalescing applied).
    pub global_transactions: u64,
    /// Bytes moved to/from DRAM by global accesses.
    pub global_bytes: u64,
    /// Bytes moved on the local (spill) path.
    pub local_bytes: u64,
    /// Constant-cache hits.
    pub const_hits: u64,
    /// Constant-cache misses.
    pub const_misses: u64,
    /// Instruction-cache misses (from the interleaved fetch trace).
    pub icache_misses: u64,
    /// Instruction fetches (cache lookups).
    pub icache_fetches: u64,
    /// `bar.sync` operations executed (per warp).
    pub barrier_syncs: u64,
    /// `bar.arrive` operations executed (per warp).
    pub barrier_arrives: u64,
    /// Cooperative-scheduler context switches forced by blocking barriers
    /// (a proxy for straggler wait time, §6.2).
    pub barrier_stall_switches: u64,
    /// Warp-ID branch instructions executed (WarpIf / WarpSwitch headers).
    pub warp_branches: u64,
}

impl EventCounts {
    /// Merge another CTA's counts into this one.
    pub fn merge(&mut self, o: &EventCounts) {
        self.issue_slots += o.issue_slots;
        self.dp_slots += o.dp_slots;
        self.dp_const_slots += o.dp_const_slots;
        self.flops += o.flops;
        self.shared_accesses += o.shared_accesses;
        self.shared_conflicts += o.shared_conflicts;
        self.global_transactions += o.global_transactions;
        self.global_bytes += o.global_bytes;
        self.local_bytes += o.local_bytes;
        self.const_hits += o.const_hits;
        self.const_misses += o.const_misses;
        self.icache_misses += o.icache_misses;
        self.icache_fetches += o.icache_fetches;
        self.barrier_syncs += o.barrier_syncs;
        self.barrier_arrives += o.barrier_arrives;
        self.barrier_stall_switches += o.barrier_stall_switches;
        self.warp_branches += o.warp_branches;
    }

    /// Constant-cache miss ratio (0 when no accesses).
    pub fn const_miss_ratio(&self) -> f64 {
        let total = self.const_hits + self.const_misses;
        if total == 0 {
            0.0
        } else {
            self.const_misses as f64 / total as f64
        }
    }

    /// Instruction-cache miss ratio.
    pub fn icache_miss_ratio(&self) -> f64 {
        if self.icache_fetches == 0 {
            0.0
        } else {
            self.icache_misses as f64 / self.icache_fetches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = EventCounts { issue_slots: 10, flops: 100, ..Default::default() };
        let b = EventCounts { issue_slots: 5, flops: 50, const_misses: 2, const_hits: 2, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.issue_slots, 15);
        assert_eq!(a.flops, 150);
        // a picked up b's 2 misses and 2 hits.
        assert!((a.const_miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ratios_handle_zero() {
        let e = EventCounts::default();
        assert_eq!(e.const_miss_ratio(), 0.0);
        assert_eq!(e.icache_miss_ratio(), 0.0);
    }
}
