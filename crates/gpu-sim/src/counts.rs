//! Event counts gathered during functional interpretation of one CTA.
//!
//! These are the inputs to the analytic timing model: the interpreter
//! observes *what* the kernel does (issue slots, memory transactions, bank
//! conflicts, cache behavior, barrier waits) and `timing` turns that into
//! cycles using the architecture parameters.


/// Aggregate event counts for one CTA execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventCounts {
    /// Total issue slots (warp-instructions, with multi-slot expansions).
    pub issue_slots: u64,
    /// Issue slots on the double-precision pipe.
    pub dp_slots: u64,
    /// DP slots whose operand reads the constant cache (§6.1 limit).
    pub dp_const_slots: u64,
    /// Double-precision FLOPs performed (lanes * per-lane flops).
    pub flops: u64,
    /// Shared-memory warp accesses, *including* bank-conflict replays.
    pub shared_accesses: u64,
    /// Bank-conflict replays alone (diagnostics).
    pub shared_conflicts: u64,
    /// 128-byte global-memory transactions (coalescing applied).
    pub global_transactions: u64,
    /// Bytes moved to/from DRAM by global accesses.
    pub global_bytes: u64,
    /// Bytes moved on the local (spill) path.
    pub local_bytes: u64,
    /// Constant-cache hits.
    pub const_hits: u64,
    /// Constant-cache misses.
    pub const_misses: u64,
    /// Instruction-cache misses (from the interleaved fetch trace).
    pub icache_misses: u64,
    /// Instruction fetches (cache lookups).
    pub icache_fetches: u64,
    /// `bar.sync` operations executed (per warp).
    pub barrier_syncs: u64,
    /// `bar.arrive` operations executed (per warp).
    pub barrier_arrives: u64,
    /// Cooperative-scheduler context switches forced by blocking barriers
    /// (a proxy for straggler wait time, §6.2).
    pub barrier_stall_switches: u64,
    /// Warp-ID branch instructions executed (WarpIf / WarpSwitch headers).
    pub warp_branches: u64,
}

impl EventCounts {
    /// Merge another CTA's counts into this one.
    pub fn merge(&mut self, o: &EventCounts) {
        self.issue_slots += o.issue_slots;
        self.dp_slots += o.dp_slots;
        self.dp_const_slots += o.dp_const_slots;
        self.flops += o.flops;
        self.shared_accesses += o.shared_accesses;
        self.shared_conflicts += o.shared_conflicts;
        self.global_transactions += o.global_transactions;
        self.global_bytes += o.global_bytes;
        self.local_bytes += o.local_bytes;
        self.const_hits += o.const_hits;
        self.const_misses += o.const_misses;
        self.icache_misses += o.icache_misses;
        self.icache_fetches += o.icache_fetches;
        self.barrier_syncs += o.barrier_syncs;
        self.barrier_arrives += o.barrier_arrives;
        self.barrier_stall_switches += o.barrier_stall_switches;
        self.warp_branches += o.warp_branches;
    }

    /// Constant-cache miss ratio (0 when no accesses).
    pub fn const_miss_ratio(&self) -> f64 {
        let total = self.const_hits + self.const_misses;
        if total == 0 {
            0.0
        } else {
            self.const_misses as f64 / total as f64
        }
    }

    /// Instruction-cache miss ratio.
    pub fn icache_miss_ratio(&self) -> f64 {
        if self.icache_fetches == 0 {
            0.0
        } else {
            self.icache_misses as f64 / self.icache_fetches as f64
        }
    }
}

/// The statically-known slice of [`EventCounts`] for one engine segment
/// (see [`crate::engine`]): everything the lowering pass can total up
/// once per kernel — issue slots, DP pipe usage, branch/barrier ops,
/// shared-memory transactions, local traffic — charged in one bulk add
/// per executed segment instead of per instruction. Dynamic events
/// (global coalescing, cache behavior) stay out of this struct.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct StaticSegCounts {
    pub(crate) issue_slots: u64,
    pub(crate) dp_slots: u64,
    pub(crate) dp_const_slots: u64,
    pub(crate) flops: u64,
    pub(crate) warp_branches: u64,
    pub(crate) shared_accesses: u64,
    pub(crate) shared_conflicts: u64,
    pub(crate) local_bytes: u64,
    pub(crate) barrier_arrives: u64,
    pub(crate) barrier_syncs: u64,
}

impl StaticSegCounts {
    /// Charge this segment's static events in bulk.
    pub(crate) fn apply(&self, c: &mut EventCounts) {
        c.issue_slots += self.issue_slots;
        c.dp_slots += self.dp_slots;
        c.dp_const_slots += self.dp_const_slots;
        c.flops += self.flops;
        c.warp_branches += self.warp_branches;
        c.shared_accesses += self.shared_accesses;
        c.shared_conflicts += self.shared_conflicts;
        c.local_bytes += self.local_bytes;
        c.barrier_arrives += self.barrier_arrives;
        c.barrier_syncs += self.barrier_syncs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_seg_counts_apply_matches_fields() {
        let s = StaticSegCounts {
            issue_slots: 10,
            dp_slots: 4,
            dp_const_slots: 2,
            flops: 320,
            warp_branches: 1,
            shared_accesses: 3,
            shared_conflicts: 2,
            local_bytes: 256,
            barrier_arrives: 1,
            barrier_syncs: 1,
        };
        let mut c = EventCounts::default();
        s.apply(&mut c);
        s.apply(&mut c);
        assert_eq!(c.issue_slots, 20);
        assert_eq!(c.flops, 640);
        assert_eq!(c.barrier_syncs, 2);
        assert_eq!(c.global_transactions, 0);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = EventCounts { issue_slots: 10, flops: 100, ..Default::default() };
        let b = EventCounts { issue_slots: 5, flops: 50, const_misses: 2, const_hits: 2, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.issue_slots, 15);
        assert_eq!(a.flops, 150);
        // a picked up b's 2 misses and 2 hits.
        assert!((a.const_miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ratios_handle_zero() {
        let e = EventCounts::default();
        assert_eq!(e.const_miss_ratio(), 0.0);
        assert_eq!(e.icache_miss_ratio(), 0.0);
    }
}
