//! `singe` — a warp-specializing DSL compiler for combustion chemistry,
//! reproducing *Bauer, Treichler, Aiken: "Singe: Leveraging Warp
//! Specialization for High Performance on GPUs"* (PPoPP 2014) in Rust.
//!
//! The compiler consumes a parsed chemical mechanism (`chemkin` crate) and
//! emits kernels for the `gpu-sim` substrate in two flavors:
//!
//! * **baseline** — heavily optimized but purely data-parallel kernels
//!   (one thread per grid point, log-space math, constant-cache constants,
//!   register allocation with spilling), the paper's §6 comparison point;
//! * **warp-specialized** — computations partitioned into sub-computations
//!   assigned to different warps (§3), mapped and scheduled with the §4
//!   algorithms (greedy cost-based mapping, deadlock-free named-barrier
//!   placement per Theorem 1, barrier allocation onto the 16 hardware
//!   barriers), and emitted with the §5 techniques (code overlaying,
//!   per-warp constant arrays with padding, constant deduplication by
//!   striping across lanes with architecture-specific broadcasts, and
//!   warp indexing).
//!
//! Compilation stages (paper Figure 8):
//!
//! ```text
//! mechanism --frontends--> dataflow graph (ops + edges)      [kernels/*]
//!          --mapping-->    ops assigned to warps + placement  [mapping]
//!          --sync-->       schedules + synchronization points [sync]
//!          --barriers-->   named-barrier allocation           [barrier_alloc]
//!          --codegen-->    overlaid gpu-sim IR (+ CUDA text)  [codegen, cuda]
//! ```

// Indexed `for i in 0..n` loops over parallel arrays are the prevailing
// idiom in the numeric kernels here; iterator rewrites obscure them.
#![allow(clippy::needless_range_loop)]

pub mod autotune;
pub mod baseline;
pub mod barrier_alloc;
pub mod codegen;
pub mod compiler;
pub mod config;
pub mod cuda;
pub mod dfg;
pub mod expr;
pub mod kernels;
pub mod mapping;
pub mod naive;
pub mod perfmodel;
pub mod search;
pub mod sync;
pub mod verify;

/// Deterministic ordered worker pool (moved into `gpu-sim` so grid
/// launches can fan CTAs over it; re-exported here for existing users).
pub use gpu_sim::pool;

pub use compiler::{Compiler, Variant};
pub use config::{CompileOptions, CompileOptionsBuilder, Placement};
pub use perfmodel::ModelReport;
pub use search::{
    BeamSearch, ScheduleSearch, SearchBudget, SearchBudgetBuilder, SearchOutcome, SearchResult,
    SearchSpace, SimulatedAnnealing,
};
pub use verify::{VerifyFailure, VerifyLevel, VerifyReport, Violation, ViolationKind};
pub use dfg::{Dfg, OpId, Operation};
pub use expr::VarId;
pub use expr::{BinOp, Expr, RowRef, ScalarProgram, Stmt, TriOp, UnOp};

/// Compiler errors.
///
/// `#[non_exhaustive]`: downstream matches need a wildcard arm so new
/// failure classes can be added without a breaking change.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CompileError {
    /// The kernel cannot fit (registers/shared/barriers) with the options.
    ResourceExhausted(String),
    /// Internal invariant violation.
    Internal(String),
    /// The emitted kernel failed independent schedule verification
    /// (deadlock, shared-memory race, or resource violation). The payload
    /// carries the full structured violation list and is exposed as this
    /// error's [`std::error::Error::source`].
    Verification(VerifyFailure),
    /// A kernel references a named input array the runtime does not know.
    UnknownArray(String),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::ResourceExhausted(m) => write!(f, "resource exhausted: {m}"),
            CompileError::Internal(m) => write!(f, "internal compiler error: {m}"),
            CompileError::Verification(v) => write!(f, "schedule verification failed: {v}"),
            CompileError::UnknownArray(m) => write!(f, "unknown array: {m}"),
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Verification(v) => Some(v),
            _ => None,
        }
    }
}

/// Result alias.
pub type CResult<T> = Result<T, CompileError>;
