//! The dataflow graph of operations — output of the first compilation stage
//! (paper §4: "a dataflow graph with nodes corresponding to units of
//! computation, which we refer to as operations, and edges indicating data
//! dependences between operations").

use crate::expr::{Expr, Stmt, VarId};

use crate::{CResult, CompileError};
use gpu_sim::isa::ArrayDecl;

/// Operation index within a [`Dfg`].
pub type OpId = usize;

/// One unit of computation.
#[derive(Debug, Clone)]
pub struct Operation {
    /// Debug name (e.g. `vis[7]`).
    pub name: String,
    /// Body statements (SSA over locals and vars).
    pub body: Vec<Stmt>,
    /// Number of op-local temporaries.
    pub n_locals: u16,
    /// Per-instance double constants, indexed by `Expr::Const` slots.
    pub consts: Vec<f64>,
    /// Per-instance row constants, indexed by `RowRef::Slot` (§5.3).
    pub irows: Vec<u32>,
    /// Warp this op must run on (frontend partitioning decision), if any.
    pub pinned_warp: Option<usize>,
    /// Frontend ordering hint: ops are scheduled phase-major.
    pub phase: u32,
}

impl Operation {
    /// Total FLOPs of the body.
    pub fn flops(&self) -> usize {
        self.body.iter().map(|s| s.flops()).sum()
    }

    /// Dataflow variables read by this op.
    pub fn inputs(&self) -> Vec<VarId> {
        let mut v = Vec::new();
        for s in &self.body {
            match s {
                Stmt::Local(_, e) | Stmt::DefVar(_, e) | Stmt::Store { value: e, .. } => {
                    e.vars(&mut v)
                }
            }
        }
        v.sort_unstable();
        v.dedup();
        // Reads of vars this op itself defines are internal.
        let defs = self.outputs();
        v.retain(|x| !defs.contains(x));
        v
    }

    /// Dataflow variables defined by this op.
    pub fn outputs(&self) -> Vec<VarId> {
        self.body
            .iter()
            .filter_map(|s| match s {
                Stmt::DefVar(v, _) => Some(*v),
                _ => None,
            })
            .collect()
    }

    /// Structural identity for overlaying (§5.1): equal bodies modulo the
    /// per-instance constant tables *and* modulo dataflow-variable ids
    /// (var ids are canonically renumbered by first appearance — the
    /// paper's footnote about "standardizing variable names"). Whether two
    /// same-skeleton ops can actually share code is decided later by the
    /// code generator's emitted-code equality check.
    pub fn same_skeleton(&self, o: &Operation) -> bool {
        self.n_locals == o.n_locals && canonical_body(&self.body) == canonical_body(&o.body)
    }
}

/// The dataflow graph for one kernel.
#[derive(Debug, Clone)]
pub struct Dfg {
    /// Kernel name.
    pub name: String,
    /// Operations.
    pub ops: Vec<Operation>,
    /// Number of dataflow variables.
    pub n_vars: u32,
    /// Global arrays (inputs and outputs) referenced by `Expr::Input` /
    /// `Stmt::Store` array ids.
    pub arrays: Vec<ArrayDecl>,
    /// Vars the frontend forces into shared memory even without cross-warp
    /// consumers (e.g. reduction inputs: "all the warps reduce their
    /// values through shared memory", §3.2). Keeps per-warp streams
    /// symmetric for overlaying.
    pub force_shared: Vec<VarId>,
}

impl Dfg {
    /// Producer op of each var. Errors if a var has zero or two producers.
    pub fn producers(&self) -> CResult<Vec<OpId>> {
        let mut prod = vec![usize::MAX; self.n_vars as usize];
        for (oi, op) in self.ops.iter().enumerate() {
            for v in op.outputs() {
                if prod[v as usize] != usize::MAX {
                    return Err(CompileError::Internal(format!(
                        "var {v} defined by ops {} and {oi}",
                        prod[v as usize]
                    )));
                }
                prod[v as usize] = oi;
            }
        }
        for (v, &p) in prod.iter().enumerate() {
            if p == usize::MAX {
                return Err(CompileError::Internal(format!("var {v} never defined")));
            }
        }
        Ok(prod)
    }

    /// Consumer ops of each var.
    pub fn consumers(&self) -> Vec<Vec<OpId>> {
        let mut cons = vec![Vec::new(); self.n_vars as usize];
        for (oi, op) in self.ops.iter().enumerate() {
            for v in op.inputs() {
                cons[v as usize].push(oi);
            }
        }
        cons
    }

    /// Topological order of ops (phase-major, then declaration order) —
    /// the linearization used for sync-point numbering (§4.2).
    pub fn topo_order(&self) -> CResult<Vec<OpId>> {
        let prod = self.producers()?;
        let n = self.ops.len();
        let mut deps: Vec<Vec<OpId>> = vec![Vec::new(); n];
        let mut indeg = vec![0usize; n];
        for (oi, op) in self.ops.iter().enumerate() {
            for v in op.inputs() {
                let p = prod[v as usize];
                deps[p].push(oi);
                indeg[oi] += 1;
            }
        }
        // Priority queue by (phase, op id) — a BinaryHeap of Reverse keys.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut heap: BinaryHeap<Reverse<(u32, usize)>> = BinaryHeap::new();
        for oi in 0..n {
            if indeg[oi] == 0 {
                heap.push(Reverse((self.ops[oi].phase, oi)));
            }
        }
        let mut order = Vec::with_capacity(n);
        while let Some(Reverse((_, oi))) = heap.pop() {
            order.push(oi);
            for &succ in &deps[oi] {
                indeg[succ] -= 1;
                if indeg[succ] == 0 {
                    heap.push(Reverse((self.ops[succ].phase, succ)));
                }
            }
        }
        if order.len() != n {
            return Err(CompileError::Internal("dataflow graph has a cycle".into()));
        }
        Ok(order)
    }

    /// Validate SSA-ness, const-slot ranges, and acyclicity.
    pub fn validate(&self) -> CResult<()> {
        let _ = self.topo_order()?;
        for (oi, op) in self.ops.iter().enumerate() {
            let mut max_const = None;
            let mut max_row = None;
            for s in &op.body {
                scan_slots(stmt_expr(s), &mut max_const, &mut max_row);
            }
            if let Some(m) = max_const {
                if m as usize >= op.consts.len() {
                    return Err(CompileError::Internal(format!(
                        "op {oi} uses const slot {m} but has {} consts",
                        op.consts.len()
                    )));
                }
            }
            if let Some(m) = max_row {
                if m as usize >= op.irows.len() {
                    return Err(CompileError::Internal(format!(
                        "op {oi} uses row slot {m} but has {} rows",
                        op.irows.len()
                    )));
                }
            }
            if let Some(w) = op.pinned_warp {
                let _ = w;
            }
        }
        Ok(())
    }

    /// Total FLOPs across all ops (per grid point).
    pub fn total_flops(&self) -> usize {
        self.ops.iter().map(|o| o.flops()).sum()
    }
}

/// Renumber var ids by first appearance so structurally identical ops with
/// different vars compare equal.
fn canonical_body(body: &[Stmt]) -> Vec<Stmt> {
    use std::collections::HashMap;
    let mut map: HashMap<VarId, VarId> = HashMap::new();
    fn canon_expr(e: &Expr, map: &mut std::collections::HashMap<VarId, VarId>) -> Expr {
        match e {
            Expr::Var(v) => {
                let n = map.len() as VarId;
                Expr::Var(*map.entry(*v).or_insert(n))
            }
            Expr::Un(o, a) => Expr::Un(*o, Box::new(canon_expr(a, map))),
            Expr::Bin(o, a, b) => {
                Expr::Bin(*o, Box::new(canon_expr(a, map)), Box::new(canon_expr(b, map)))
            }
            Expr::Tri(o, a, b, c) => Expr::Tri(
                *o,
                Box::new(canon_expr(a, map)),
                Box::new(canon_expr(b, map)),
                Box::new(canon_expr(c, map)),
            ),
            other => other.clone(),
        }
    }
    body.iter()
        .map(|s| match s {
            Stmt::Local(l, e) => Stmt::Local(*l, canon_expr(e, &mut map)),
            Stmt::DefVar(v, e) => {
                let e2 = canon_expr(e, &mut map);
                let n = map.len() as VarId;
                Stmt::DefVar(*map.entry(*v).or_insert(n), e2)
            }
            Stmt::Store { array, row, value } => Stmt::Store {
                array: *array,
                row: *row,
                value: canon_expr(value, &mut map),
            },
        })
        .collect()
}

fn stmt_expr(s: &Stmt) -> &Expr {
    match s {
        Stmt::Local(_, e) | Stmt::DefVar(_, e) | Stmt::Store { value: e, .. } => e,
    }
}

fn scan_slots(e: &Expr, max_const: &mut Option<u16>, max_row: &mut Option<u16>) {
    let upd = |m: &mut Option<u16>, v: u16| {
        *m = Some(m.map_or(v, |x| x.max(v)));
    };
    match e {
        Expr::Const(c) => upd(max_const, *c),
        Expr::Input { row: crate::expr::RowRef::Slot(s), .. } => upd(max_row, *s),
        Expr::Un(_, a) => scan_slots(a, max_const, max_row),
        Expr::Bin(_, a, b) => {
            scan_slots(a, max_const, max_row);
            scan_slots(b, max_const, max_row);
        }
        Expr::Tri(_, a, b, c) => {
            scan_slots(a, max_const, max_row);
            scan_slots(b, max_const, max_row);
            scan_slots(c, max_const, max_row);
        }
        _ => {}
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use crate::expr::RowRef;

    /// A small diamond DFG used by several stage tests:
    /// op0 defines v0 from input; op1: v1 = f(v0); op2: v2 = g(v0);
    /// op3 stores v1+v2.
    pub fn diamond() -> Dfg {
        let ops = vec![
            Operation {
                name: "load".into(),
                body: vec![Stmt::DefVar(0, Expr::Input { array: 0, row: RowRef::Fixed(0) })],
                n_locals: 0,
                consts: vec![],
                irows: vec![],
                pinned_warp: None,
                phase: 0,
            },
            Operation {
                name: "f".into(),
                body: vec![Stmt::DefVar(1, Expr::Var(0).mul(Expr::Const(0)))],
                n_locals: 0,
                consts: vec![2.0],
                irows: vec![],
                pinned_warp: None,
                phase: 1,
            },
            Operation {
                name: "g".into(),
                body: vec![Stmt::DefVar(2, Expr::Var(0).add(Expr::Const(0)))],
                n_locals: 0,
                consts: vec![10.0],
                irows: vec![],
                pinned_warp: None,
                phase: 1,
            },
            Operation {
                name: "out".into(),
                body: vec![Stmt::Store {
                    array: 1,
                    row: RowRef::Fixed(0),
                    value: Expr::Var(1).add(Expr::Var(2)),
                }],
                n_locals: 0,
                consts: vec![],
                irows: vec![],
                pinned_warp: None,
                phase: 2,
            },
        ];
        Dfg {
            name: "diamond".into(),
            ops,
            n_vars: 3,
            arrays: vec![
                ArrayDecl { name: "in".into(), rows: 1, output: false },
                ArrayDecl { name: "out".into(), rows: 1, output: true },
            ],
            force_shared: vec![],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::diamond;
    use super::*;
    use crate::expr::RowRef;

    #[test]
    fn diamond_validates_and_orders() {
        let d = diamond();
        d.validate().unwrap();
        let order = d.topo_order().unwrap();
        assert_eq!(order[0], 0);
        assert_eq!(order[3], 3);
    }

    #[test]
    fn producers_and_consumers() {
        let d = diamond();
        let prod = d.producers().unwrap();
        assert_eq!(prod, vec![0, 1, 2]);
        let cons = d.consumers();
        assert_eq!(cons[0], vec![1, 2]);
        assert_eq!(cons[1], vec![3]);
    }

    #[test]
    fn double_definition_rejected() {
        let mut d = diamond();
        d.ops[2].body = vec![Stmt::DefVar(1, Expr::Lit(0.0))];
        assert!(d.producers().is_err());
    }

    #[test]
    fn undefined_var_rejected() {
        let mut d = diamond();
        d.n_vars = 4;
        assert!(d.producers().is_err());
    }

    #[test]
    fn cycle_rejected() {
        let mut d = diamond();
        // op0 now also reads v1 — cycle 0 -> 1 -> 0.
        d.ops[0].body.push(Stmt::Local(0, Expr::Var(1)));
        d.ops[0].n_locals = 1;
        assert!(d.topo_order().is_err());
    }

    #[test]
    fn const_slot_out_of_range_rejected() {
        let mut d = diamond();
        d.ops[1].consts.clear();
        assert!(d.validate().is_err());
    }

    #[test]
    fn skeleton_equality() {
        let d = diamond();
        assert!(d.ops[1].same_skeleton(&d.ops[1]));
        assert!(!d.ops[1].same_skeleton(&d.ops[2]));
        // Same structure, different const table values => same skeleton.
        let mut o2 = d.ops[1].clone();
        o2.consts = vec![99.0];
        assert!(d.ops[1].same_skeleton(&o2));
    }

    #[test]
    fn inputs_exclude_self_defined() {
        let op = Operation {
            name: "x".into(),
            body: vec![
                Stmt::DefVar(5, Expr::Lit(1.0)),
                Stmt::DefVar(6, Expr::Var(5).add(Expr::Var(7))),
            ],
            n_locals: 0,
            consts: vec![],
            irows: vec![],
            pinned_warp: None,
            phase: 0,
        };
        assert_eq!(op.inputs(), vec![7]);
        assert_eq!(op.outputs(), vec![5, 6]);
    }

    #[test]
    fn row_slot_out_of_range_rejected() {
        let mut d = diamond();
        d.ops[0].body = vec![Stmt::DefVar(0, Expr::Input { array: 0, row: RowRef::Slot(3) })];
        assert!(d.validate().is_err());
    }
}

