//! Model-driven schedule search (ROADMAP item 5).
//!
//! The autotuner's grids ([`crate::autotune`]) enumerate a fixed, coarse
//! slice of the schedule space. This module searches the *full*
//! [`CompileOptions`] space — warps, `point_iters`, [`Placement`],
//! `uniform_shared_reads`, `exp_const_from_registers`, the mapping
//! weights on a coarse lattice, and the arch-clamped `pipeline_depth` —
//! with the static performance model ([`crate::perfmodel`], microseconds
//! per evaluation) as the cost function and the simulator as the final
//! oracle, mirroring [`crate::autotune::autotune_guided`]'s contract:
//!
//! 1. a strategy ([`BeamSearch`] by default, [`SimulatedAnnealing`]
//!    behind the same [`ScheduleSearch`] trait) expands candidates and
//!    scores every one with the model (compile + predict, no
//!    interpretation); candidates that fail to compile score `+inf`,
//!    exactly as in serve's autotune;
//! 2. only the `sim_top_k` best-predicted survivors are *simulated*,
//!    and the winner is the best **simulated** time among those.
//!
//! Neighbor generation respects architecture feasibility up front
//! ([`SearchSpace::canonical`]: warp budget, largest-fitting pipeline
//! depth, Buffer-placement read discipline), so structurally doomed or
//! duplicate candidates are pruned before they are ever scored.
//!
//! Determinism: candidate expansion is pure, batches are scored on the
//! ordered worker pool ([`crate::pool::run_ordered`]) and folded in
//! input order, all ranking ties break toward the earlier candidate, and
//! [`SimulatedAnnealing`] draws from a fixed-seed xorshift generator —
//! results are bit-identical at any `--jobs` count.

use crate::autotune::{depth_menu, grid_options, GUIDED_TOP_K};
use crate::codegen::{compile_warp_specialized, Compiled};
use crate::config::{CompileOptions, Placement};
use crate::dfg::Dfg;
use crate::pool::run_ordered;
use crate::CResult;
use gpu_sim::arch::GpuArch;
use gpu_sim::launch::{launch, LaunchInputs, LaunchMode};
use std::collections::HashSet;

/// How much work a schedule search (or budgeted guided autotune) may do.
///
/// `#[non_exhaustive]` so new knobs can ride along without breaking
/// downstream code; construct with [`SearchBudget::default`] (which
/// reproduces the historical behavior everywhere it is consumed) or the
/// fluent [`SearchBudget::builder`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct SearchBudget {
    /// Beam width: how many best-predicted candidates seed each round's
    /// neighbor expansion.
    pub beam_width: usize,
    /// Neighbor-expansion rounds after the seed beam is scored.
    pub rounds: usize,
    /// How many top-predicted candidates the simulation oracle runs
    /// (the lifted [`GUIDED_TOP_K`] cap — no longer a silent constant).
    pub sim_top_k: usize,
    /// Hard cap on model scorings (each is one compile + one static
    /// prediction); expansion stops when the cap is reached.
    pub max_model_evals: usize,
}

impl Default for SearchBudget {
    fn default() -> SearchBudget {
        SearchBudget { beam_width: 8, rounds: 4, sim_top_k: GUIDED_TOP_K, max_model_evals: 160 }
    }
}

impl SearchBudget {
    /// Start a fluent builder over the defaults.
    pub fn builder() -> SearchBudgetBuilder {
        SearchBudgetBuilder::default()
    }
}

/// Fluent builder for [`SearchBudget`]; finish with
/// [`SearchBudgetBuilder::build`].
#[derive(Debug, Clone, Default)]
#[must_use = "a builder does nothing until .build() is called"]
pub struct SearchBudgetBuilder {
    budget: SearchBudget,
}

impl SearchBudgetBuilder {
    /// Beam width per round.
    pub fn beam_width(mut self, beam_width: usize) -> Self {
        self.budget.beam_width = beam_width;
        self
    }

    /// Neighbor-expansion rounds.
    pub fn rounds(mut self, rounds: usize) -> Self {
        self.budget.rounds = rounds;
        self
    }

    /// Simulation-oracle cap.
    pub fn sim_top_k(mut self, sim_top_k: usize) -> Self {
        self.budget.sim_top_k = sim_top_k;
        self
    }

    /// Model-evaluation cap.
    pub fn max_model_evals(mut self, max_model_evals: usize) -> Self {
        self.budget.max_model_evals = max_model_evals;
        self
    }

    /// Finish the builder.
    pub fn build(self) -> SearchBudget {
        self.budget
    }
}

/// The searchable schedule space: one menu per [`CompileOptions`]
/// dimension, plus the architecture limits candidate admission enforces.
/// Fields are public so tests (and callers with domain knowledge) can
/// shrink or widen menus; [`SearchSpace::for_arch`] builds the default.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// Warp-count menu.
    pub warps: Vec<usize>,
    /// Streaming point-iteration menu.
    pub point_iters: Vec<u32>,
    /// Placement alternatives (the base placement is always admitted).
    pub placements: Vec<Placement>,
    /// Pipeline-depth menu (already arch-clamped by [`for_arch`]).
    ///
    /// [`for_arch`]: SearchSpace::for_arch
    pub pipeline_depths: Vec<usize>,
    /// Mapping-weight lattices (coarse by design: the mapper only reacts
    /// to order-of-magnitude changes).
    pub w_flops: Vec<f64>,
    /// Register-balance weight lattice.
    pub w_regs: Vec<f64>,
    /// Locality weight lattice.
    pub w_locality: Vec<f64>,
    /// Explore flipping `uniform_shared_reads`.
    pub toggle_uniform_shared_reads: bool,
    /// Explore flipping `exp_const_from_registers`.
    pub toggle_exp_const: bool,
    /// Hard warp budget (from the architecture's per-SM warp file).
    pub max_warps: usize,
}

impl SearchSpace {
    /// The default search space for an architecture: the grid menus plus
    /// the axes no grid enumerates (placement moves, mapping weights,
    /// the §3.2/§6.1 toggles, an extra warp count and stream depth).
    pub fn for_arch(arch: &GpuArch) -> SearchSpace {
        SearchSpace {
            warps: vec![2, 3, 4, 6, 8, 10, 12, 14, 16],
            point_iters: vec![1, 2, 4, 8],
            placements: vec![
                Placement::Store,
                Placement::Mixed(88),
                Placement::Mixed(176),
                Placement::Buffer(176),
            ],
            pipeline_depths: depth_menu(arch).to_vec(),
            w_flops: vec![0.5, 1.0, 2.0],
            w_regs: vec![0.0, 0.5, 1.0],
            w_locality: vec![0.0, 0.25, 1.0],
            toggle_uniform_shared_reads: true,
            toggle_exp_const: true,
            max_warps: arch.max_warps_per_sm,
        }
    }

    /// Admit a candidate: apply the feasibility clamps the compiler
    /// would apply anyway, so textually distinct options that compile to
    /// the same schedule collapse to one candidate, and reject what the
    /// architecture can never run (warp budget). Returns `None` for
    /// rejected candidates — they are pruned, not scored.
    pub fn canonical(&self, mut o: CompileOptions) -> Option<CompileOptions> {
        if o.warps == 0 || o.warps > self.max_warps || o.point_iters == 0 {
            return None;
        }
        // Largest-fitting pipeline depth: the codegen clamp, applied up
        // front (depth cannot exceed the stream or the arch menu).
        o.pipeline_depth = self
            .pipeline_depths
            .iter()
            .copied()
            .filter(|&d| d <= o.pipeline_depth.max(1) && d as u32 <= o.point_iters)
            .max()
            .unwrap_or(1);
        // Buffer placement forces producer-register reads (the compiler
        // disables uniform shared reads there); canonicalize so the
        // toggle cannot mint duplicate Buffer candidates.
        if matches!(o.placement, Placement::Buffer(_)) {
            o.uniform_shared_reads = false;
        }
        Some(o)
    }

    /// Dedup key for a canonical candidate (the full options Debug form:
    /// every searchable dimension is a field).
    pub fn key(o: &CompileOptions) -> String {
        format!("{o:?}")
    }

    /// The seed beam: `base` itself plus the unified grid
    /// ([`grid_options`]) over this space's warp/iteration/depth menus at
    /// the base placement — the same single source of truth the legacy
    /// candidate grids are built from.
    pub fn seeds(&self, base: &CompileOptions) -> Vec<CompileOptions> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        let mut push = |o: CompileOptions, out: &mut Vec<CompileOptions>| {
            if seen.insert(Self::key(&o)) {
                out.push(o);
            }
        };
        if let Some(b) = self.canonical(base.clone()) {
            push(b, &mut out);
        }
        let grid = grid_options(base.placement, &self.point_iters, &self.pipeline_depths);
        for g in grid {
            // Grid entries use default warp counts; keep only menu warps.
            if !self.warps.contains(&g.warps) {
                continue;
            }
            if let Some(c) = self.canonical(g) {
                push(c, &mut out);
            }
        }
        out
    }

    /// Single-dimension neighbor moves from `o`: one step along each
    /// menu axis (toward both menu neighbors), every alternative
    /// placement, and the boolean toggles. All results are canonical;
    /// infeasible moves are pruned here, never scored.
    pub fn neighbors(&self, o: &CompileOptions) -> Vec<CompileOptions> {
        let mut raw: Vec<CompileOptions> = Vec::new();
        for w in menu_steps(&self.warps, o.warps, |&v| v as f64) {
            raw.push(CompileOptions { warps: w, ..o.clone() });
        }
        for it in menu_steps(&self.point_iters, o.point_iters, |&v| v as f64) {
            raw.push(CompileOptions { point_iters: it, ..o.clone() });
        }
        for d in menu_steps(&self.pipeline_depths, o.pipeline_depth, |&v| v as f64) {
            raw.push(CompileOptions { pipeline_depth: d, ..o.clone() });
        }
        for &p in &self.placements {
            if p != o.placement {
                raw.push(CompileOptions { placement: p, ..o.clone() });
            }
        }
        if self.toggle_uniform_shared_reads {
            raw.push(CompileOptions { uniform_shared_reads: !o.uniform_shared_reads, ..o.clone() });
        }
        if self.toggle_exp_const {
            raw.push(CompileOptions {
                exp_const_from_registers: !o.exp_const_from_registers,
                ..o.clone()
            });
        }
        for w in menu_steps(&self.w_flops, o.w_flops, |&v| v) {
            raw.push(CompileOptions { w_flops: w, ..o.clone() });
        }
        for w in menu_steps(&self.w_regs, o.w_regs, |&v| v) {
            raw.push(CompileOptions { w_regs: w, ..o.clone() });
        }
        for w in menu_steps(&self.w_locality, o.w_locality, |&v| v) {
            raw.push(CompileOptions { w_locality: w, ..o.clone() });
        }
        raw.into_iter().filter_map(|c| self.canonical(c)).collect()
    }

    /// Exhaustively enumerate the whole (canonical, deduplicated) space
    /// with non-menu fields taken from `base`. Meant for tests and small
    /// custom spaces — the default space is ~10^4 points.
    pub fn enumerate(&self, base: &CompileOptions) -> Vec<CompileOptions> {
        let bools = |t: bool, b: bool| if t { vec![false, true] } else { vec![b] };
        let usr_menu = bools(self.toggle_uniform_shared_reads, base.uniform_shared_reads);
        let exp_menu = bools(self.toggle_exp_const, base.exp_const_from_registers);
        let mut placements = self.placements.clone();
        if !placements.contains(&base.placement) {
            placements.insert(0, base.placement);
        }
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        for &warps in &self.warps {
            for &point_iters in &self.point_iters {
                for &placement in &placements {
                    for &pipeline_depth in &self.pipeline_depths {
                        for &w_flops in &self.w_flops {
                            for &w_regs in &self.w_regs {
                                for &w_locality in &self.w_locality {
                                    for &uniform_shared_reads in &usr_menu {
                                        for &exp_const_from_registers in &exp_menu {
                                            let c = CompileOptions {
                                                warps,
                                                point_iters,
                                                placement,
                                                pipeline_depth,
                                                w_flops,
                                                w_regs,
                                                w_locality,
                                                uniform_shared_reads,
                                                exp_const_from_registers,
                                                ..base.clone()
                                            };
                                            if let Some(c) = self.canonical(c) {
                                                if seen.insert(Self::key(&c)) {
                                                    out.push(c);
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// Both menu neighbors of `v` (plus the nearest menu value itself when
/// `v` is off-lattice, snapping it on). Ties toward the lower index.
fn menu_steps<T: Copy + PartialEq>(menu: &[T], v: T, as_f: impl Fn(&T) -> f64) -> Vec<T> {
    if menu.is_empty() {
        return Vec::new();
    }
    let vf = as_f(&v);
    let mut nearest = 0usize;
    let mut best = f64::INFINITY;
    for (i, m) in menu.iter().enumerate() {
        let d = (as_f(m) - vf).abs();
        if d < best {
            best = d;
            nearest = i;
        }
    }
    let mut out = Vec::new();
    if menu[nearest] != v {
        out.push(menu[nearest]);
    }
    if nearest > 0 {
        out.push(menu[nearest - 1]);
    }
    if nearest + 1 < menu.len() {
        out.push(menu[nearest + 1]);
    }
    out
}

/// One model-scored candidate, in evaluation order.
#[derive(Debug, Clone)]
pub struct ExploredPoint {
    /// The canonical candidate.
    pub options: CompileOptions,
    /// Model-predicted probe-grid seconds (`+inf` = did not compile).
    pub predicted_seconds: f64,
    /// Which expansion round produced it (0 = seed beam).
    pub round: usize,
}

/// Batch oracle closure: chosen survivors in, measured probe seconds
/// out, in input order (`Err` = launch failure, carried verbatim onto
/// the corresponding [`SearchPoint`]).
pub type SimulateFn<'a> = dyn FnMut(&[CompileOptions]) -> Vec<Result<f64, String>> + 'a;

/// A search strategy: expand candidates, score them in batches through
/// the caller's cost closure, return every scored point in evaluation
/// order. Strategies never simulate — the oracle split lives in
/// [`run_search`], shared by every implementation.
pub trait ScheduleSearch: Sync {
    /// Strategy name (for logs and reports).
    fn name(&self) -> &'static str;

    /// Explore the space from `base` under `budget`. `score` maps a
    /// batch of canonical candidates to predicted seconds (`+inf` for
    /// candidates that fail to compile) and must be called in
    /// deterministic batch order.
    fn explore(
        &self,
        space: &SearchSpace,
        base: &CompileOptions,
        budget: &SearchBudget,
        score: &mut dyn FnMut(&[CompileOptions]) -> Vec<f64>,
    ) -> Vec<ExploredPoint>;
}

/// Deterministic beam search: score the seed beam (the unified grid),
/// then for each round expand single-dimension neighbors of the
/// `beam_width` best-predicted candidates seen so far, skipping
/// everything already scored, until the round count or the
/// model-evaluation cap is reached.
#[derive(Debug, Clone, Copy, Default)]
pub struct BeamSearch;

impl ScheduleSearch for BeamSearch {
    fn name(&self) -> &'static str {
        "beam"
    }

    fn explore(
        &self,
        space: &SearchSpace,
        base: &CompileOptions,
        budget: &SearchBudget,
        score: &mut dyn FnMut(&[CompileOptions]) -> Vec<f64>,
    ) -> Vec<ExploredPoint> {
        let mut points: Vec<ExploredPoint> = Vec::new();
        let mut seen: HashSet<String> = HashSet::new();
        let mut batch: Vec<CompileOptions> = Vec::new();
        for s in space.seeds(base) {
            if points.len() + batch.len() >= budget.max_model_evals {
                break;
            }
            if seen.insert(SearchSpace::key(&s)) {
                batch.push(s);
            }
        }
        let scores = score(&batch);
        for (o, s) in batch.into_iter().zip(scores) {
            points.push(ExploredPoint { options: o, predicted_seconds: s, round: 0 });
        }

        for round in 1..=budget.rounds {
            let headroom = budget.max_model_evals.saturating_sub(points.len());
            if headroom == 0 {
                break;
            }
            // The beam: best-predicted finite candidates scored so far,
            // ties toward the earlier evaluation.
            let mut order: Vec<usize> =
                (0..points.len()).filter(|&i| points[i].predicted_seconds.is_finite()).collect();
            order.sort_by(|&a, &b| {
                points[a]
                    .predicted_seconds
                    .total_cmp(&points[b].predicted_seconds)
                    .then(a.cmp(&b))
            });
            let mut batch: Vec<CompileOptions> = Vec::new();
            'expand: for &i in order.iter().take(budget.beam_width) {
                for n in space.neighbors(&points[i].options) {
                    if batch.len() >= headroom {
                        break 'expand;
                    }
                    if seen.insert(SearchSpace::key(&n)) {
                        batch.push(n);
                    }
                }
            }
            if batch.is_empty() {
                break; // converged: the beam's whole neighborhood is scored
            }
            let scores = score(&batch);
            for (o, s) in batch.into_iter().zip(scores) {
                points.push(ExploredPoint { options: o, predicted_seconds: s, round });
            }
        }
        points
    }
}

/// Deterministic simulated annealing behind the same trait: a fixed-seed
/// xorshift random walk over single-dimension neighbor moves with a
/// geometric temperature schedule; worse candidates are accepted with
/// probability `exp(-rel_delta / T)`. Scored points accumulate exactly
/// like the beam's, so [`run_search`]'s oracle phase is identical.
#[derive(Debug, Clone, Copy)]
pub struct SimulatedAnnealing {
    /// RNG seed: same seed, same space, same budget → bit-identical walk.
    pub seed: u64,
    /// Starting relative temperature.
    pub t0: f64,
    /// Final relative temperature.
    pub t1: f64,
}

impl Default for SimulatedAnnealing {
    fn default() -> SimulatedAnnealing {
        SimulatedAnnealing { seed: 0x5143_ED01_u64, t0: 0.30, t1: 0.01 }
    }
}

/// xorshift64* — tiny, deterministic, dependency-free.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl ScheduleSearch for SimulatedAnnealing {
    fn name(&self) -> &'static str {
        "anneal"
    }

    fn explore(
        &self,
        space: &SearchSpace,
        base: &CompileOptions,
        budget: &SearchBudget,
        score: &mut dyn FnMut(&[CompileOptions]) -> Vec<f64>,
    ) -> Vec<ExploredPoint> {
        let mut rng = XorShift(self.seed | 1);
        let mut points: Vec<ExploredPoint> = Vec::new();
        let mut seen: HashSet<String> = HashSet::new();
        let seeds: Vec<CompileOptions> = space
            .seeds(base)
            .into_iter()
            .filter(|s| seen.insert(SearchSpace::key(s)))
            .take(budget.max_model_evals)
            .collect();
        let scores = score(&seeds);
        for (o, s) in seeds.into_iter().zip(scores) {
            points.push(ExploredPoint { options: o, predicted_seconds: s, round: 0 });
        }
        // Walk from the best-predicted seed.
        let mut cur = match points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.predicted_seconds.is_finite())
            .min_by(|(a, pa), (b, pb)| {
                pa.predicted_seconds.total_cmp(&pb.predicted_seconds).then(a.cmp(b))
            }) {
            Some((i, _)) => i,
            None => return points, // nothing compiled; oracle phase will report
        };
        let steps = budget.max_model_evals.saturating_sub(points.len());
        for step in 0..steps {
            let fresh: Vec<CompileOptions> = space
                .neighbors(&points[cur].options)
                .into_iter()
                .filter(|n| !seen.contains(&SearchSpace::key(n)))
                .collect();
            if fresh.is_empty() {
                // Dead-ended: restart from a random already-scored point.
                cur = (rng.next() % points.len() as u64) as usize;
                continue;
            }
            let pick = fresh[(rng.next() % fresh.len() as u64) as usize].clone();
            seen.insert(SearchSpace::key(&pick));
            let s = score(std::slice::from_ref(&pick))[0];
            points.push(ExploredPoint {
                options: pick,
                predicted_seconds: s,
                round: step + 1,
            });
            let cur_s = points[cur].predicted_seconds;
            let t = self.t0 * (self.t1 / self.t0).powf(step as f64 / steps.max(1) as f64);
            let accept = if !s.is_finite() {
                false
            } else if s < cur_s || !cur_s.is_finite() {
                true
            } else {
                let rel = (s - cur_s) / cur_s.abs().max(f64::MIN_POSITIVE);
                rng.next_f64() < (-rel / t.max(1e-9)).exp()
            };
            if accept {
                cur = points.len() - 1;
            }
        }
        points
    }
}

/// One candidate in a [`SearchOutcome`], in evaluation order.
#[derive(Debug, Clone)]
pub struct SearchPoint {
    /// The canonical candidate.
    pub options: CompileOptions,
    /// Model-predicted probe seconds (`None` = did not compile).
    pub predicted_seconds: Option<f64>,
    /// Oracle-simulated probe seconds (`None` = pruned from simulation,
    /// or the simulation failed — see `failure`).
    pub simulated_seconds: Option<f64>,
    /// Simulation-failure message, when the oracle ran and failed.
    pub failure: Option<String>,
    /// Expansion round that produced the candidate (0 = seed beam).
    pub round: usize,
}

/// Per-round trajectory entry (for the `--search` example and reports).
#[derive(Debug, Clone, Copy)]
pub struct RoundStats {
    /// Round index (0 = seed beam).
    pub round: usize,
    /// Candidates scored in this round.
    pub evaluated: usize,
    /// Best model prediction seen up to and including this round.
    pub best_predicted: Option<f64>,
    /// Best oracle simulation among candidates discovered by this round
    /// (`None` until the round that produced a simulated survivor).
    pub best_simulated: Option<f64>,
}

/// Everything a search run produced: the audit trail plus the winner.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Which strategy ran (`"beam"` / `"anneal"`).
    pub strategy: &'static str,
    /// Every scored candidate, in evaluation order, with oracle results
    /// attached to the simulated ones.
    pub points: Vec<SearchPoint>,
    /// Per-round trajectory.
    pub rounds: Vec<RoundStats>,
    /// Candidates scored by the model (compiles + predictions).
    pub model_evals: usize,
    /// Candidates simulated by the oracle.
    pub simulations: usize,
    /// The winning options (best simulated time).
    pub best_options: CompileOptions,
    /// The winner's model prediction.
    pub best_predicted_seconds: Option<f64>,
    /// The winner's simulated probe seconds.
    pub best_seconds: f64,
}

impl SearchOutcome {
    /// Fraction of model-scored candidates the oracle simulated.
    pub fn sim_fraction(&self) -> f64 {
        if self.model_evals == 0 {
            0.0
        } else {
            self.simulations as f64 / self.model_evals as f64
        }
    }
}

/// Run a strategy end to end with caller-supplied cost and oracle
/// closures, returning the full [`SearchOutcome`].
///
/// This is the engine behind [`autotune_search`] and the serve layer's
/// budgeted autotune: `score` maps a candidate batch to model-predicted
/// seconds (`+inf` = did not compile), `simulate` maps the chosen
/// survivors to measured probe seconds (`Err` = launch failure). The
/// oracle phase ranks every finite-scored candidate by (prediction,
/// evaluation order), simulates the top `budget.sim_top_k`, logs how
/// many scored candidates were dropped, and picks the best simulated
/// time (strict `<`, first-best-wins in rank order).
pub fn run_search(
    strategy: &dyn ScheduleSearch,
    space: &SearchSpace,
    base: &CompileOptions,
    budget: &SearchBudget,
    score: &mut dyn FnMut(&[CompileOptions]) -> Vec<f64>,
    simulate: &mut SimulateFn<'_>,
) -> CResult<SearchOutcome> {
    let explored = strategy.explore(space, base, budget, score);
    let model_evals = explored.len();

    // Oracle phase: rank by (predicted, eval order), simulate the top K.
    let mut ranked: Vec<usize> =
        (0..explored.len()).filter(|&i| explored[i].predicted_seconds.is_finite()).collect();
    ranked.sort_by(|&a, &b| {
        explored[a].predicted_seconds.total_cmp(&explored[b].predicted_seconds).then(a.cmp(&b))
    });
    let feasible = ranked.len();
    let chosen: Vec<usize> = ranked.into_iter().take(budget.sim_top_k).collect();
    eprintln!(
        "[search({}): scored {model_evals} candidates ({feasible} compiled), simulating {}, \
         {} dropped from simulation]",
        strategy.name(),
        chosen.len(),
        feasible - chosen.len()
    );
    let chosen_opts: Vec<CompileOptions> =
        chosen.iter().map(|&i| explored[i].options.clone()).collect();
    let sims = simulate(&chosen_opts);

    let mut points: Vec<SearchPoint> = explored
        .into_iter()
        .map(|p| SearchPoint {
            options: p.options,
            predicted_seconds: p.predicted_seconds.is_finite().then_some(p.predicted_seconds),
            simulated_seconds: None,
            failure: None,
            round: p.round,
        })
        .collect();
    let mut best: Option<(f64, usize)> = None;
    for (j, res) in sims.iter().enumerate() {
        let i = chosen[j];
        match res {
            Ok(sec) => {
                points[i].simulated_seconds = Some(*sec);
                // Strict `<` keeps first-best-wins in rank order.
                if best.is_none_or(|(b, _)| *sec < b) {
                    best = Some((*sec, i));
                }
            }
            Err(e) => points[i].failure = Some(e.clone()),
        }
    }
    let (best_seconds, bi) = best.ok_or_else(|| {
        crate::CompileError::ResourceExhausted("no schedule-search candidate ran".into())
    })?;

    // Trajectory rollup: cumulative bests per round.
    let max_round = points.iter().map(|p| p.round).max().unwrap_or(0);
    let mut rounds = Vec::with_capacity(max_round + 1);
    let mut best_pred: Option<f64> = None;
    let mut best_sim: Option<f64> = None;
    for r in 0..=max_round {
        let mut evaluated = 0usize;
        for p in points.iter().filter(|p| p.round == r) {
            evaluated += 1;
            if let Some(ps) = p.predicted_seconds {
                if best_pred.is_none_or(|b| ps < b) {
                    best_pred = Some(ps);
                }
            }
            if let Some(ss) = p.simulated_seconds {
                if best_sim.is_none_or(|b| ss < b) {
                    best_sim = Some(ss);
                }
            }
        }
        rounds.push(RoundStats { round: r, evaluated, best_predicted: best_pred, best_simulated: best_sim });
    }

    Ok(SearchOutcome {
        strategy: strategy.name(),
        simulations: chosen.len(),
        model_evals,
        best_options: points[bi].options.clone(),
        best_predicted_seconds: points[bi].predicted_seconds,
        best_seconds,
        points,
        rounds,
    })
}

/// A schedule-search result: the winning compile plus the audit trail.
#[derive(Debug)]
pub struct SearchResult {
    /// The winning compile (best simulated probe time).
    pub best: Compiled,
    /// The full search outcome (every scored point, rounds, counts).
    pub outcome: SearchOutcome,
}

/// Beam-search the full schedule space for `dfg` on `arch`, seeded at
/// `base` (the caller's default options — e.g. the serve layer's
/// per-kernel defaults), using the static model as the cost function and
/// `TimingOnly` probe launches as the oracle. See the module docs for
/// the contract; see [`autotune_search_with_jobs`] for determinism.
pub fn autotune_search(
    dfg: &Dfg,
    arch: &GpuArch,
    base: &CompileOptions,
    budget: &SearchBudget,
    probe_points: usize,
    inputs_for: &(dyn Fn(&gpu_sim::isa::Kernel, usize) -> Vec<Vec<f64>> + Sync),
) -> CResult<SearchResult> {
    autotune_search_with_jobs(
        dfg,
        arch,
        base,
        budget,
        probe_points,
        inputs_for,
        crate::pool::default_jobs(),
    )
}

/// [`autotune_search`] with an explicit worker count. Batches are scored
/// and simulated on the ordered pool and folded in input order, so the
/// result is bit-identical at any worker count.
pub fn autotune_search_with_jobs(
    dfg: &Dfg,
    arch: &GpuArch,
    base: &CompileOptions,
    budget: &SearchBudget,
    probe_points: usize,
    inputs_for: &(dyn Fn(&gpu_sim::isa::Kernel, usize) -> Vec<Vec<f64>> + Sync),
    jobs: usize,
) -> CResult<SearchResult> {
    let space = SearchSpace::for_arch(arch);
    autotune_search_in_space_with_jobs(
        dfg, arch, &space, base, &BeamSearch, budget, probe_points, inputs_for, jobs,
    )
}

/// The fully-parameterized search entry: explicit space and strategy.
/// [`autotune_search`] is this with [`SearchSpace::for_arch`] and
/// [`BeamSearch`].
#[allow(clippy::too_many_arguments)]
pub fn autotune_search_in_space_with_jobs(
    dfg: &Dfg,
    arch: &GpuArch,
    space: &SearchSpace,
    base: &CompileOptions,
    strategy: &dyn ScheduleSearch,
    budget: &SearchBudget,
    probe_points: usize,
    inputs_for: &(dyn Fn(&gpu_sim::isa::Kernel, usize) -> Vec<Vec<f64>> + Sync),
    jobs: usize,
) -> CResult<SearchResult> {
    let mut score = |cands: &[CompileOptions]| -> Vec<f64> {
        run_ordered(jobs, cands.len(), |i| {
            match compile_warp_specialized(dfg, &cands[i], arch, None) {
                // Failed compiles score +inf, exactly as in serve's
                // autotune — they can never be chosen for simulation.
                Err(_) => f64::INFINITY,
                Ok(c) => {
                    let ppc = c.kernel.points_per_cta;
                    let grid = probe_points.div_ceil(ppc) * ppc;
                    crate::perfmodel::predict_seconds(&c.kernel, arch, grid)
                        .unwrap_or(f64::INFINITY)
                }
            }
        })
    };
    let mut simulate = |cands: &[CompileOptions]| -> Vec<Result<f64, String>> {
        run_ordered(jobs, cands.len(), |i| {
            let c = compile_warp_specialized(dfg, &cands[i], arch, None)
                .map_err(|e| e.to_string())?;
            let ppc = c.kernel.points_per_cta;
            let grid = probe_points.div_ceil(ppc) * ppc;
            let owned = inputs_for(&c.kernel, grid);
            let arrays: Vec<&[f64]> = owned.iter().map(|v| v.as_slice()).collect();
            launch(&c.kernel, arch, &LaunchInputs { arrays }, grid, LaunchMode::TimingOnly)
                .map(|out| out.report.seconds)
                .map_err(|e| e.to_string())
        })
    };
    let outcome = run_search(strategy, space, base, budget, &mut score, &mut simulate)?;
    // Re-compile the winner (compilation is deterministic and cached
    // upstream where it matters) so callers get a runnable artifact.
    let best = compile_warp_specialized(dfg, &outcome.best_options, arch, None)?;
    Ok(SearchResult { best, outcome })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_defaults_reproduce_the_historical_caps() {
        let b = SearchBudget::default();
        assert_eq!(b.sim_top_k, GUIDED_TOP_K);
        let built = SearchBudget::builder().beam_width(3).rounds(1).build();
        assert_eq!(built.beam_width, 3);
        assert_eq!(built.rounds, 1);
        assert_eq!(built.sim_top_k, GUIDED_TOP_K);
    }

    #[test]
    fn canonicalization_applies_the_compiler_clamps() {
        let arch = GpuArch::hopper();
        let space = SearchSpace::for_arch(&arch);
        // Depth is clamped to the stream depth...
        let o = CompileOptions::builder().point_iters(2).pipeline_depth(4).build();
        assert_eq!(space.canonical(o).unwrap().pipeline_depth, 2);
        // ...Buffer placement drops uniform shared reads...
        let o = CompileOptions::builder().placement(Placement::Buffer(176)).build();
        assert!(!space.canonical(o).unwrap().uniform_shared_reads);
        // ...and the warp budget rejects outright.
        let o = CompileOptions::with_warps(4096);
        assert!(space.canonical(o).is_none());
    }

    #[test]
    fn neighbors_are_canonical_and_single_step() {
        let arch = GpuArch::kepler_k20c();
        let space = SearchSpace::for_arch(&arch);
        let base = space.canonical(CompileOptions::default()).unwrap();
        let n = space.neighbors(&base);
        assert!(!n.is_empty());
        for c in &n {
            // Every neighbor survives its own canonicalization (fixpoint).
            let again = space.canonical(c.clone()).unwrap();
            assert_eq!(SearchSpace::key(&again), SearchSpace::key(c));
            // Kepler's menu never reaches depth 4.
            assert!(c.pipeline_depth <= 2);
        }
    }

    #[test]
    fn seed_beam_comes_from_the_unified_grid() {
        let arch = GpuArch::hopper();
        let space = SearchSpace::for_arch(&arch);
        let base = CompileOptions::default();
        let seeds = space.seeds(&base);
        // The extended grid (iters 1/2/4, depth 1) is a subset of the
        // seed beam at the same placement.
        for g in crate::autotune::candidate_grid_extended(base.placement) {
            let g = space.canonical(g).unwrap();
            assert!(
                seeds.iter().any(|s| SearchSpace::key(s) == SearchSpace::key(&g)),
                "missing grid seed {g:?}"
            );
        }
        // No duplicates.
        let keys: HashSet<String> = seeds.iter().map(SearchSpace::key).collect();
        assert_eq!(keys.len(), seeds.len());
    }

    #[test]
    fn annealing_walks_are_bit_identical_per_seed() {
        let arch = GpuArch::kepler_k20c();
        let space = SearchSpace::for_arch(&arch);
        let base = CompileOptions::default();
        // Large enough that the walk runs well past the seed beam
        // (kepler's seed beam is ~57 points).
        let budget = SearchBudget::builder().max_model_evals(100).build();
        // A synthetic, deterministic cost: cheap hash of the options key.
        let mut cost = |cands: &[CompileOptions]| -> Vec<f64> {
            cands
                .iter()
                .map(|c| {
                    let k = SearchSpace::key(c);
                    k.bytes().fold(7u64, |a, b| a.wrapping_mul(31).wrapping_add(b as u64)) as f64
                })
                .collect()
        };
        let sa = SimulatedAnnealing::default();
        let a = sa.explore(&space, &base, &budget, &mut cost);
        let b = sa.explore(&space, &base, &budget, &mut cost);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(SearchSpace::key(&x.options), SearchSpace::key(&y.options));
            assert_eq!(x.predicted_seconds.to_bits(), y.predicted_seconds.to_bits());
        }
        // A different seed explores a different walk.
        let c = SimulatedAnnealing { seed: 99, ..SimulatedAnnealing::default() }
            .explore(&space, &base, &budget, &mut cost);
        let ka: Vec<String> = a.iter().map(|p| SearchSpace::key(&p.options)).collect();
        let kc: Vec<String> = c.iter().map(|p| SearchSpace::key(&p.options)).collect();
        assert_ne!(ka, kc);
    }

    #[test]
    fn beam_respects_the_model_eval_cap() {
        let arch = GpuArch::hopper();
        let space = SearchSpace::for_arch(&arch);
        let budget = SearchBudget::builder().max_model_evals(17).build();
        let mut cost =
            |cands: &[CompileOptions]| -> Vec<f64> { cands.iter().map(|_| 1.0).collect() };
        let pts = BeamSearch.explore(&space, &CompileOptions::default(), &budget, &mut cost);
        assert!(pts.len() <= 17, "{}", pts.len());
    }
}
