//! Independent static verifier for emitted kernels.
//!
//! The scheduler (`sync.rs`) *constructs* barrier protocols that are safe
//! by Theorem 1; this module *re-checks* the emitted artifact without
//! trusting any of that machinery. It abstractly interprets each warp's
//! flattened instruction stream (the same `flatten` the simulator uses,
//! via the read-only [`gpu_sim::interp::FlatStep`] view) and checks three
//! property families:
//!
//! * **Deadlock freedom** — warps are co-executed under the same
//!   round-robin discipline as the simulator; a full round with every
//!   live warp blocked on a `bar.sync` is reported with the complete
//!   blocked-warp/barrier picture. Because the flattened streams are
//!   straight-line (all control flow is static), the round-robin schedule
//!   is representative: a barrier either completes under *every*
//!   schedule or under none, so detection is sound and complete.
//! * **Shared-memory race freedom** — a FastTrack-style vector-clock
//!   analysis over shared words. `bar.arrive` is a release (the arriving
//!   warp publishes its clock into the barrier), `bar.sync` is a release
//!   *and* an acquire (the waking warp joins the merged clock of the
//!   generation that released it). Reads require a happens-before edge
//!   from the last write (RW), writes from the last write (WW) *and*
//!   from every read since it (WAR — this is what catches slot-recycling
//!   hazards across `PointLoop` generations: iteration *i+1*'s producer
//!   store must be ordered after iteration *i*'s consumer loads).
//! * **Resource limits** — barrier ids must fit the architecture's named
//!   barrier file, expected-warp counts must not exceed the CTA, shared
//!   addresses must stay inside `shared_words`, and the CTA's shared
//!   footprint must fit the SM.
//!
//! Shared addresses are resolved by concrete per-lane constant
//! propagation over the index ISA. Every `IdxInstr` source is
//! compile-time deterministic (immediates, lane id, warp id, integer
//! constant banks, intra-warp shuffles), so the abstract domain
//! `[u32; 32]` per register loses nothing; if resolution ever fails the
//! verifier refuses to certify ([`ViolationKind::Unresolved`]) rather
//! than guessing.

use crate::config::CompileOptions;
use crate::{CResult, CompileError};
use gpu_sim::arch::GpuArch;
use gpu_sim::flatcache::{fingerprint, flatten_cached};
use gpu_sim::interp::FlatProgram;
use gpu_sim::isa::{IdxInstr, IdxOp, Instr, Kernel, SAddr};
use gpu_sim::WARP_SIZE;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// How much verification [`enforce`] performs after codegen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyLevel {
    /// No verification.
    Off,
    /// Verify every kernel except those compiled with the deliberate
    /// §6.2 `unsafe_remove_barriers` ablation (which exists to measure
    /// the cost of the barriers it strips, and is racy by construction).
    #[default]
    Basic,
    /// Verify everything; the §6.2 ablation output is rejected.
    Strict,
}

/// What kind of property a violation breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// No warp can make progress; circular or mismatched waits.
    Deadlock,
    /// Disagreeing expected-warp counts or unmatched arrivals on a
    /// barrier id.
    BarrierMismatch,
    /// A shared-memory access pair with no happens-before edge.
    Race,
    /// A declared or referenced resource exceeds the architecture.
    Resource,
    /// The verifier could not statically resolve an address and refuses
    /// to certify the kernel.
    Unresolved,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ViolationKind::Deadlock => "deadlock",
            ViolationKind::BarrierMismatch => "barrier-mismatch",
            ViolationKind::Race => "race",
            ViolationKind::Resource => "resource",
            ViolationKind::Unresolved => "unresolved",
        };
        f.write_str(s)
    }
}

/// One verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Property family.
    pub kind: ViolationKind,
    /// Human-readable description with warp/address context.
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.kind, self.msg)
    }
}

/// A failed verification as a structured error: the kernel name plus the
/// complete violation list. This is what
/// [`CompileError::Verification`] wraps, and it is reachable through
/// `std::error::Error::source` for callers that walk error chains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyFailure {
    /// Name of the kernel that failed verification.
    pub kernel: String,
    /// Every violation found (not just the first).
    pub violations: Vec<Violation>,
}

impl fmt::Display for VerifyFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "kernel '{}' failed schedule verification ({} violation{}):",
            self.kernel,
            self.violations.len(),
            if self.violations.len() == 1 { "" } else { "s" }
        )?;
        for v in self.violations.iter().take(8) {
            write!(f, "\n  {v}")?;
        }
        if self.violations.len() > 8 {
            write!(f, "\n  ... and {} more", self.violations.len() - 8)?;
        }
        Ok(())
    }
}

impl std::error::Error for VerifyFailure {}

/// Statistics from a successful verification.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Warps analyzed.
    pub warps: usize,
    /// Dynamic barrier operations (arrive + sync) executed.
    pub barrier_ops: usize,
    /// Dynamic shared-memory accesses checked for races.
    pub shared_accesses: usize,
    /// Distinct barrier ids observed.
    pub barrier_ids: usize,
    /// Barrier generations completed (protocol "rounds").
    pub generations: u64,
}

type VerifyMemo = Mutex<HashMap<((u64, u64), &'static str), Result<VerifyReport, Vec<Violation>>>>;

fn verify_memo() -> &'static VerifyMemo {
    static CACHE: OnceLock<VerifyMemo> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Bound for the verify memo; cleared wholesale when full (sweeps churn
/// through distinct kernels, LRU bookkeeping is not worth the locking).
const VERIFY_MEMO_MAX: usize = 256;

/// Verify `kernel` against `arch`. Returns statistics on success or the
/// full list of violations (not just the first) on failure.
///
/// Memoized per (kernel fingerprint, arch): verification is deterministic,
/// and the same kernel is typically verified twice — once by [`enforce`]
/// right after codegen and again by the `report verify` sweep.
pub fn verify_kernel(kernel: &Kernel, arch: &GpuArch) -> Result<VerifyReport, Vec<Violation>> {
    let key = (fingerprint(kernel), arch.name);
    if let Some(hit) = verify_memo().lock().unwrap().get(&key) {
        return hit.clone();
    }
    // Verify outside the lock: the dynamic protocol run is the expensive
    // part, and parallel sweep workers must not serialize on it.
    let prog = flatten_cached(kernel);
    let mut v = Verifier::new(kernel, arch, &prog);
    v.check_static();
    v.run();
    let result =
        if v.violations.is_empty() { Ok(v.report) } else { Err(v.violations) };
    let mut memo = verify_memo().lock().unwrap();
    if memo.len() >= VERIFY_MEMO_MAX {
        memo.clear();
    }
    memo.entry(key).or_insert(result).clone()
}

/// Policy wrapper used by the compilers: run [`verify_kernel`] according
/// to `options.verify` and convert violations into a hard
/// [`CompileError::Verification`].
pub fn enforce(kernel: &Kernel, arch: &GpuArch, options: &CompileOptions) -> CResult<()> {
    let run = match options.verify {
        VerifyLevel::Off => false,
        VerifyLevel::Basic => !options.unsafe_remove_barriers,
        VerifyLevel::Strict => true,
    };
    if !run {
        return Ok(());
    }
    match verify_kernel(kernel, arch) {
        Ok(_) => Ok(()),
        Err(violations) => Err(CompileError::Verification(VerifyFailure {
            kernel: kernel.name.clone(),
            violations,
        })),
    }
}

/// Vector clock over warps.
#[derive(Debug, Clone, PartialEq)]
struct VClock(Vec<u64>);

impl VClock {
    fn new(n: usize) -> VClock {
        VClock(vec![0; n])
    }

    fn join(&mut self, other: &VClock) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// Does the event `(warp, epoch)` happen before a warp holding this
    /// clock?
    fn ordered_after(&self, warp: usize, epoch: u64) -> bool {
        self.0[warp] >= epoch
    }
}

/// Abstract named-barrier state, mirroring the simulator's semantics
/// plus per-generation release clocks for the happens-before analysis.
#[derive(Debug, Clone)]
struct AbsBarrier {
    arrived: u16,
    expected: Option<u16>,
    generation: u64,
    /// Merged clocks of the arrivals in the current (incomplete)
    /// generation.
    pending: VClock,
    /// Release clock of each completed generation; a warp that blocked
    /// during generation `g` acquires `releases[g]` when it wakes.
    releases: Vec<VClock>,
}

/// Per-shared-word access history, struct-of-arrays over
/// `shared_words x warps`: the verifier touches millions of (word, warp)
/// pairs on big kernels, so read tracking must be O(1) per word with no
/// per-slot heap structures. Reads keep one entry per warp (the latest
/// epoch subsumes earlier ones for the WAR check; epoch 0 = no read,
/// real epochs start at 1).
struct SlotTable {
    n_warps: usize,
    last_write: Vec<Option<(usize, u64, u32)>>,
    read_epoch: Vec<u64>,
    read_addr: Vec<u32>,
}

impl SlotTable {
    fn new(shared_words: usize, n_warps: usize) -> SlotTable {
        SlotTable {
            n_warps,
            last_write: vec![None; shared_words],
            read_epoch: vec![0; shared_words * n_warps],
            read_addr: vec![0; shared_words * n_warps],
        }
    }
}

/// Per-warp abstract state.
struct WarpAbs {
    pc: usize,
    iregs: Vec<Option<[u32; WARP_SIZE]>>,
    clock: VClock,
    /// `(barrier, generation at block time)` if blocked on a sync.
    blocked_on: Option<(usize, u64)>,
}

struct Verifier<'a> {
    kernel: &'a Kernel,
    arch: &'a GpuArch,
    prog: &'a FlatProgram,
    warps: Vec<WarpAbs>,
    barriers: Vec<AbsBarrier>,
    slots: SlotTable,
    violations: Vec<Violation>,
    /// Deduplication of repeated violations from unrolled code: one
    /// report per (kind, static address).
    reported: BTreeSet<(u8, u32)>,
    report: VerifyReport,
    barrier_ids: BTreeSet<usize>,
}

impl<'a> Verifier<'a> {
    fn new(kernel: &'a Kernel, arch: &'a GpuArch, prog: &'a FlatProgram) -> Verifier<'a> {
        let n = prog.n_warps();
        let n_barriers = arch.named_barriers_per_sm.max(kernel.barriers_used);
        Verifier {
            kernel,
            arch,
            prog,
            warps: (0..n)
                .map(|_| WarpAbs {
                    pc: 0,
                    iregs: vec![Some([0; WARP_SIZE]); kernel.iregs_per_thread],
                    clock: VClock::new(n),
                    blocked_on: None,
                })
                .collect(),
            barriers: vec![
                AbsBarrier {
                    arrived: 0,
                    expected: None,
                    generation: 0,
                    pending: VClock::new(n),
                    releases: Vec::new(),
                };
                n_barriers
            ],
            slots: SlotTable::new(kernel.shared_words, n),
            violations: Vec::new(),
            reported: BTreeSet::new(),
            report: VerifyReport { warps: n, ..VerifyReport::default() },
            barrier_ids: BTreeSet::new(),
        }
    }

    fn flag(&mut self, kind: ViolationKind, addr: u32, msg: String) {
        let key = (kind as u8, addr);
        if self.reported.insert(key) {
            self.violations.push(Violation { kind, msg });
        }
    }

    /// Whole-kernel resource checks that need no interpretation.
    fn check_static(&mut self) {
        if self.kernel.shared_bytes() > self.arch.shared_per_sm {
            self.flag(
                ViolationKind::Resource,
                u32::MAX,
                format!(
                    "shared memory footprint {} B exceeds the SM's {} B on {}",
                    self.kernel.shared_bytes(),
                    self.arch.shared_per_sm,
                    self.arch.name
                ),
            );
        }
        if self.kernel.barriers_used > self.arch.named_barriers_per_sm {
            self.flag(
                ViolationKind::Resource,
                u32::MAX - 1,
                format!(
                    "kernel declares {} named barriers but {} has only {}",
                    self.kernel.barriers_used, self.arch.name, self.arch.named_barriers_per_sm
                ),
            );
        }
    }

    /// Validate a barrier operand pair; returns false if the id is
    /// unusable (out of the architecture's barrier file).
    fn check_barrier_operands(&mut self, addr: u32, bar: u8, warps: u16) -> bool {
        let id = usize::from(bar);
        if id >= self.arch.named_barriers_per_sm {
            self.flag(
                ViolationKind::Resource,
                addr,
                format!(
                    "barrier id {} at addr {} exceeds {}'s named-barrier file of {}",
                    bar, addr, self.arch.name, self.arch.named_barriers_per_sm
                ),
            );
            return false;
        }
        if warps == 0 || usize::from(warps) > self.kernel.warps_per_cta {
            self.flag(
                ViolationKind::BarrierMismatch,
                addr,
                format!(
                    "barrier {} at addr {} expects {} warps but the CTA has {}",
                    bar, addr, warps, self.kernel.warps_per_cta
                ),
            );
            return false;
        }
        self.barrier_ids.insert(id);
        true
    }

    /// Record an arrival on `bar` from warp `w`. Returns the generation
    /// the arrival belongs to (what a sync must wait past).
    fn arrive(&mut self, w: usize, addr: u32, bar: usize, warps: u16) -> u64 {
        self.report.barrier_ops += 1;
        let n = self.warps.len();
        // Release: bump our epoch past the events published so far, then
        // publish our clock into the barrier's pending generation.
        self.warps[w].clock.0[w] += 1;
        let b = &mut self.barriers[bar];
        if let Some(e) = b.expected {
            if e != warps {
                let msg = format!(
                    "barrier {} at addr {}: warp {} expects {} warps, earlier participants expected {}",
                    bar, addr, w, warps, e
                );
                self.flag(ViolationKind::BarrierMismatch, addr, msg);
            }
        } else {
            self.barriers[bar].expected = Some(warps);
        }
        let clock = self.warps[w].clock.clone();
        let b = &mut self.barriers[bar];
        b.pending.join(&clock);
        b.arrived += 1;
        let gen = b.generation;
        if u32::from(b.arrived) >= u32::from(b.expected.unwrap_or(warps)) {
            // Generation completes: archive the release clock. The
            // expected count resets too — hardware named barriers are
            // recycled across sync points with different warp groups.
            let released = std::mem::replace(&mut b.pending, VClock::new(n));
            debug_assert_eq!(b.releases.len() as u64, b.generation);
            b.releases.push(released);
            b.arrived = 0;
            b.expected = None;
            b.generation += 1;
            self.report.generations += 1;
        }
        gen
    }

    /// Resolve an index operand to per-lane values.
    fn idx_val(&self, w: usize, op: IdxOp) -> Option<[u32; WARP_SIZE]> {
        match op {
            IdxOp::Imm(v) => Some([v; WARP_SIZE]),
            IdxOp::Reg(r) => self.warps[w].iregs.get(usize::from(r)).copied().flatten(),
        }
    }

    /// Constant-propagate an index instruction for warp `w`. `pset` is
    /// the executing point set: pipeline offsets rotate against it.
    fn exec_idx(&mut self, w: usize, addr: u32, i: IdxInstr, pset: u32) {
        let set = |this: &mut Verifier<'a>, dst: u16, v: Option<[u32; WARP_SIZE]>| {
            if let Some(slot) = this.warps[w].iregs.get_mut(usize::from(dst)) {
                *slot = v;
            }
        };
        match i {
            IdxInstr::Mov { dst, src } => {
                let v = self.idx_val(w, src);
                set(self, dst, v);
            }
            IdxInstr::Add { dst, a, b } => {
                let v = match (self.idx_val(w, a), self.idx_val(w, b)) {
                    (Some(x), Some(y)) => {
                        let mut out = [0u32; WARP_SIZE];
                        for l in 0..WARP_SIZE {
                            out[l] = x[l].wrapping_add(y[l]);
                        }
                        Some(out)
                    }
                    _ => None,
                };
                set(self, dst, v);
            }
            IdxInstr::Mul { dst, a, b } => {
                let v = match (self.idx_val(w, a), self.idx_val(w, b)) {
                    (Some(x), Some(y)) => {
                        let mut out = [0u32; WARP_SIZE];
                        for l in 0..WARP_SIZE {
                            out[l] = x[l].wrapping_mul(y[l]);
                        }
                        Some(out)
                    }
                    _ => None,
                };
                set(self, dst, v);
            }
            IdxInstr::LaneId { dst } => {
                let mut out = [0u32; WARP_SIZE];
                for (l, o) in out.iter_mut().enumerate() {
                    *o = l as u32;
                }
                set(self, dst, Some(out));
            }
            IdxInstr::WarpId { dst } => set(self, dst, Some([w as u32; WARP_SIZE])),
            IdxInstr::LdConst { dst, bank, idx } => {
                let v = self.idx_val(w, idx).and_then(|idxs| {
                    let bank = self.kernel.iconst_banks.get(usize::from(bank))?;
                    let mut out = [0u32; WARP_SIZE];
                    for l in 0..WARP_SIZE {
                        out[l] = *bank.get(idxs[l] as usize)?;
                    }
                    Some(out)
                });
                if v.is_none() {
                    self.flag(
                        ViolationKind::Unresolved,
                        addr,
                        format!(
                            "warp {}: integer-constant load at addr {} reads outside its bank",
                            w, addr
                        ),
                    );
                }
                set(self, dst, v);
            }
            IdxInstr::Shfl { dst, src, lane } => {
                let v = self.warps[w]
                    .iregs
                    .get(usize::from(src))
                    .copied()
                    .flatten()
                    .map(|x| [x[usize::from(lane) % WARP_SIZE]; WARP_SIZE]);
                set(self, dst, v);
            }
            IdxInstr::PipeOff { dst, k, stride } => {
                let v = (pset % u32::from(k.max(1))).wrapping_mul(stride);
                set(self, dst, Some([v; WARP_SIZE]));
            }
        }
    }

    /// Resolve a shared address to the set of distinct words it touches,
    /// restricted to `lane_pred` if given. `None` = unresolvable.
    fn saddr_words(
        &mut self,
        w: usize,
        addr: u32,
        s: &SAddr,
        lane_pred: Option<u8>,
    ) -> Option<Vec<u32>> {
        let base = match s.base {
            None => [0u32; WARP_SIZE],
            Some(r) => match self.warps[w].iregs.get(usize::from(r)).copied().flatten() {
                Some(v) => v,
                None => {
                    self.flag(
                        ViolationKind::Unresolved,
                        addr,
                        format!(
                            "warp {}: shared address at addr {} depends on an index register \
                             the verifier could not resolve; refusing to certify",
                            w, addr
                        ),
                    );
                    return None;
                }
            },
        };
        let (lane_lo, lane_hi) = match lane_pred {
            Some(p) => {
                let l = usize::from(p) % WARP_SIZE;
                (l, l + 1)
            }
            None => (0, WARP_SIZE),
        };
        // Stack-buffered sort+dedup: this runs once per shared access
        // (tens of thousands per kernel), so no per-access heap sets.
        let mut words = [0u32; WARP_SIZE];
        let mut n = 0usize;
        for l in lane_lo..lane_hi {
            let word = base[l].wrapping_add(s.imm).wrapping_add(s.lane_stride * l as u32);
            if word as usize >= self.kernel.shared_words {
                self.flag(
                    ViolationKind::Resource,
                    addr,
                    format!(
                        "warp {} lane {}: shared access at addr {} touches word {} but the \
                         kernel declares {} words",
                        w, l, addr, word, self.kernel.shared_words
                    ),
                );
                continue;
            }
            words[n] = word;
            n += 1;
        }
        let words = &mut words[..n];
        words.sort_unstable();
        let mut out = Vec::with_capacity(n);
        for &word in words.iter() {
            if out.last() != Some(&word) {
                out.push(word);
            }
        }
        Some(out)
    }

    fn shared_read(&mut self, w: usize, addr: u32, s: &SAddr) {
        self.warps[w].clock.0[w] += 1;
        let epoch = self.warps[w].clock.0[w];
        if let Some(words) = self.saddr_words(w, addr, s, None) {
            self.report.shared_accesses += 1;
            for word in words {
                let wi = word as usize;
                if let Some((ww, we, waddr)) = self.slots.last_write[wi] {
                    if ww != w && !self.warps[w].clock.ordered_after(ww, we) {
                        let msg = format!(
                            "shared word {}: read by warp {} at addr {} is not barrier-ordered \
                             after the write by warp {} at addr {}",
                            word, w, addr, ww, waddr
                        );
                        self.flag(ViolationKind::Race, addr, msg);
                    }
                }
                let idx = wi * self.slots.n_warps + w;
                self.slots.read_epoch[idx] = epoch;
                self.slots.read_addr[idx] = addr;
            }
        }
    }

    fn shared_write(&mut self, w: usize, addr: u32, s: &SAddr, lane_pred: Option<u8>) {
        self.warps[w].clock.0[w] += 1;
        let epoch = self.warps[w].clock.0[w];
        if let Some(words) = self.saddr_words(w, addr, s, lane_pred) {
            self.report.shared_accesses += 1;
            for word in words {
                let wi = word as usize;
                if let Some((ww, we, waddr)) = self.slots.last_write[wi] {
                    if ww != w && !self.warps[w].clock.ordered_after(ww, we) {
                        let msg = format!(
                            "shared word {}: write by warp {} at addr {} is not barrier-ordered \
                             after the write by warp {} at addr {}",
                            word, w, addr, ww, waddr
                        );
                        self.flag(ViolationKind::Race, addr, msg);
                    }
                }
                let n = self.slots.n_warps;
                let base = wi * n;
                for rw in 0..n {
                    let re = self.slots.read_epoch[base + rw];
                    if re != 0 && rw != w && !self.warps[w].clock.ordered_after(rw, re) {
                        let raddr = self.slots.read_addr[base + rw];
                        let msg = format!(
                            "shared word {}: write by warp {} at addr {} recycles the slot before \
                             the read by warp {} at addr {} is barrier-ordered (write-after-read \
                             across generations)",
                            word, w, addr, rw, raddr
                        );
                        self.flag(ViolationKind::Race, addr, msg);
                    }
                }
                self.slots.read_epoch[base..base + n].fill(0);
                self.slots.last_write[wi] = Some((w, epoch, addr));
            }
        }
    }

    /// Run warp `w` until it blocks or finishes. Returns true if it made
    /// progress.
    ///
    /// `pc` indexes the synchronization-relevant substream: arithmetic
    /// ops cannot affect index registers, shared memory, or barrier state,
    /// so the protocol run skips them wholesale.
    fn run_warp(&mut self, w: usize) -> bool {
        let start = self.warps[w].pc;
        while self.warps[w].pc < self.prog.sync_stream_len(w) {
            let (addr, pset, instr) = self.prog.sync_step(w, self.warps[w].pc);
            // Stage-rotated barriers resolve to a concrete id against the
            // executing point set before the ordinary arrive/sync logic.
            let instr = match *instr {
                Instr::BarArriveStage { base, k, warps } => Instr::BarArrive {
                    bar: base + (pset % u32::from(k.max(1))) as u8,
                    warps,
                },
                Instr::BarSyncStage { base, k, warps } => Instr::BarSync {
                    bar: base + (pset % u32::from(k.max(1))) as u8,
                    warps,
                },
                _ => instr.clone(),
            };
            match instr {
                Instr::Idx(i) => self.exec_idx(w, addr, i, pset),
                Instr::LdShared { addr: s, .. } => self.shared_read(w, addr, &s),
                Instr::StShared { addr: s, lane_pred, .. } => {
                    self.shared_write(w, addr, &s, lane_pred)
                }
                // An async copy writes global data into shared memory: for
                // the race analysis it is a shared write (the global side
                // is read-only input and cannot race).
                Instr::CpAsync { addr: s, .. } => self.shared_write(w, addr, &s, None),
                Instr::BarArrive { bar, warps }
                    if self.check_barrier_operands(addr, bar, warps) => {
                        self.arrive(w, addr, usize::from(bar), warps);
                    }
                Instr::BarSync { bar, warps }
                    if self.check_barrier_operands(addr, bar, warps) => {
                        let bar = usize::from(bar);
                        let gen = self.arrive(w, addr, bar, warps);
                        if self.barriers[bar].generation > gen {
                            // Completed immediately (we were the last
                            // arrival): acquire the release clock.
                            let release = self.barriers[bar].releases[gen as usize].clone();
                            self.warps[w].clock.join(&release);
                        } else {
                            self.warps[w].blocked_on = Some((bar, gen));
                            self.warps[w].pc += 1;
                            return true;
                        }
                    }
                _ => {}
            }
            self.warps[w].pc += 1;
        }
        self.warps[w].pc > start
    }

    /// Round-robin co-execution of all warps, mirroring the simulator's
    /// scheduler; reports deadlock when a full round makes no progress.
    fn run(&mut self) {
        let n = self.warps.len();
        loop {
            let mut progressed = false;
            let mut all_done = true;
            for w in 0..n {
                if let Some((bar, gen)) = self.warps[w].blocked_on {
                    if self.barriers[bar].generation > gen {
                        let release = self.barriers[bar].releases[gen as usize].clone();
                        self.warps[w].clock.join(&release);
                        self.warps[w].blocked_on = None;
                        progressed = true;
                    } else {
                        all_done = false;
                        continue;
                    }
                }
                if self.warps[w].pc < self.prog.sync_stream_len(w) {
                    if self.run_warp(w) {
                        progressed = true;
                    }
                    if self.warps[w].pc < self.prog.sync_stream_len(w)
                        || self.warps[w].blocked_on.is_some()
                    {
                        all_done = false;
                    }
                }
            }
            if all_done {
                break;
            }
            if !progressed {
                let blocked: Vec<String> = (0..n)
                    .filter_map(|w| {
                        self.warps[w].blocked_on.map(|(bar, _)| {
                            let b = &self.barriers[bar];
                            format!(
                                "warp {} waits on barrier {} ({}/{} arrived)",
                                w,
                                bar,
                                b.arrived,
                                b.expected.map(u32::from).unwrap_or(0)
                            )
                        })
                    })
                    .collect();
                self.flag(
                    ViolationKind::Deadlock,
                    u32::MAX - 2,
                    format!(
                        "no warp can make progress; circular or mismatched waits: {}",
                        blocked.join("; ")
                    ),
                );
                return;
            }
        }
        // Protocol completeness: every arrival must have been consumed by
        // a completed generation (a dangling arrive means the expected
        // count never filled — a latent deadlock for any warp that would
        // sync on it).
        for (id, b) in self.barriers.iter().enumerate() {
            if b.arrived > 0 {
                let msg = format!(
                    "barrier {}: kernel ends with {} unmatched arrival(s) of {} expected",
                    id,
                    b.arrived,
                    b.expected.map(u32::from).unwrap_or(0)
                );
                self.violations
                    .push(Violation { kind: ViolationKind::BarrierMismatch, msg });
            }
        }
        self.report.barrier_ids = self.barrier_ids.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::isa::{Node, Op};

    fn arch() -> GpuArch {
        GpuArch::kepler_k20c()
    }

    fn two_warp_kernel(body: Vec<Node>, shared_words: usize, barriers_used: usize) -> Kernel {
        Kernel {
            name: "test".into(),
            body,
            warps_per_cta: 2,
            points_per_cta: 32,
            dregs_per_thread: 4,
            iregs_per_thread: 2,
            shared_words,
            local_words_per_thread: 0,
            const_banks: vec![],
            iconst_banks: vec![],
            barriers_used,
            global_arrays: vec![],
            spilled_bytes_per_thread: 0,
            exp_const_from_registers: false,
        }
    }

    fn st(imm: u32) -> Node {
        Node::Op(Instr::StShared { src: Op::Imm(1.0), addr: SAddr::lane(imm), lane_pred: None })
    }

    fn ld(imm: u32) -> Node {
        Node::Op(Instr::LdShared { dst: 0, addr: SAddr::lane(imm) })
    }

    /// Figure 2's protocol: producer stores then arrives; consumer syncs
    /// then loads. Verifies clean.
    #[test]
    fn figure2_protocol_is_clean() {
        let k = two_warp_kernel(
            vec![
                Node::WarpIf {
                    mask: 0b01,
                    body: vec![st(0), Node::Op(Instr::BarArrive { bar: 0, warps: 2 })],
                },
                Node::WarpIf {
                    mask: 0b10,
                    body: vec![Node::Op(Instr::BarSync { bar: 0, warps: 2 }), ld(0)],
                },
            ],
            32,
            1,
        );
        let r = verify_kernel(&k, &arch()).expect("clean");
        assert_eq!(r.warps, 2);
        assert!(r.generations >= 1);
    }

    /// The same exchange without the barrier is a race.
    #[test]
    fn unordered_read_is_a_race() {
        let k = two_warp_kernel(
            vec![
                Node::WarpIf { mask: 0b01, body: vec![st(0)] },
                Node::WarpIf { mask: 0b10, body: vec![ld(0)] },
            ],
            32,
            0,
        );
        let errs = verify_kernel(&k, &arch()).unwrap_err();
        assert!(errs.iter().any(|v| v.kind == ViolationKind::Race), "{errs:?}");
    }

    /// Cross-waiting syncs (each warp waits on a barrier only the other
    /// would complete) deadlock.
    #[test]
    fn circular_wait_deadlocks() {
        let k = two_warp_kernel(
            vec![
                Node::WarpIf {
                    mask: 0b01,
                    body: vec![
                        Node::Op(Instr::BarSync { bar: 0, warps: 2 }),
                        Node::Op(Instr::BarArrive { bar: 1, warps: 2 }),
                    ],
                },
                Node::WarpIf {
                    mask: 0b10,
                    body: vec![
                        Node::Op(Instr::BarSync { bar: 1, warps: 2 }),
                        Node::Op(Instr::BarArrive { bar: 0, warps: 2 }),
                    ],
                },
            ],
            0,
            2,
        );
        let errs = verify_kernel(&k, &arch()).unwrap_err();
        assert!(errs.iter().any(|v| v.kind == ViolationKind::Deadlock), "{errs:?}");
    }

    /// Disagreeing expected-warp counts on one barrier id.
    #[test]
    fn expected_count_disagreement_is_flagged() {
        let k = two_warp_kernel(
            vec![
                Node::WarpIf {
                    mask: 0b01,
                    body: vec![Node::Op(Instr::BarArrive { bar: 0, warps: 2 })],
                },
                Node::WarpIf {
                    mask: 0b10,
                    body: vec![Node::Op(Instr::BarArrive { bar: 0, warps: 1 })],
                },
            ],
            0,
            1,
        );
        let errs = verify_kernel(&k, &arch()).unwrap_err();
        assert!(
            errs.iter().any(|v| v.kind == ViolationKind::BarrierMismatch),
            "{errs:?}"
        );
    }

    /// Barrier id beyond the architecture's named-barrier file.
    #[test]
    fn barrier_id_overflow_is_flagged() {
        let k = two_warp_kernel(
            vec![Node::Op(Instr::BarSync { bar: 16, warps: 2 })],
            0,
            17,
        );
        let errs = verify_kernel(&k, &arch()).unwrap_err();
        assert!(errs.iter().any(|v| v.kind == ViolationKind::Resource), "{errs:?}");
    }

    /// PointLoop slot recycling: the consumer signals the producer's
    /// buffer-free barrier *before* actually loading the slot, so the
    /// next generation's store is unordered with the previous
    /// generation's load (write-after-read). All barriers still complete
    /// — this is a pure race, not a deadlock.
    #[test]
    fn generation_recycling_race_is_flagged() {
        let body = vec![Node::PointLoop {
            iters: 2,
            body: vec![
                Node::WarpIf {
                    mask: 0b01,
                    body: vec![
                        st(0),
                        Node::Op(Instr::BarArrive { bar: 0, warps: 2 }),
                        Node::Op(Instr::BarSync { bar: 1, warps: 2 }),
                    ],
                },
                Node::WarpIf {
                    mask: 0b10,
                    body: vec![
                        Node::Op(Instr::BarSync { bar: 0, warps: 2 }),
                        // Bug: frees the buffer before reading it.
                        Node::Op(Instr::BarArrive { bar: 1, warps: 2 }),
                        ld(0),
                    ],
                },
            ],
        }];
        let k = two_warp_kernel(body, 32, 2);
        let errs = verify_kernel(&k, &arch()).unwrap_err();
        assert!(errs.iter().any(|v| v.kind == ViolationKind::Race), "{errs:?}");
        assert!(!errs.iter().any(|v| v.kind == ViolationKind::Deadlock), "{errs:?}");
    }

    /// Swapping the load before the buffer-free arrive repairs the
    /// protocol.
    #[test]
    fn generation_recycling_fixed_order_is_clean() {
        let body = vec![Node::PointLoop {
            iters: 2,
            body: vec![
                Node::WarpIf {
                    mask: 0b01,
                    body: vec![
                        st(0),
                        Node::Op(Instr::BarArrive { bar: 0, warps: 2 }),
                        Node::Op(Instr::BarSync { bar: 1, warps: 2 }),
                    ],
                },
                Node::WarpIf {
                    mask: 0b10,
                    body: vec![
                        Node::Op(Instr::BarSync { bar: 0, warps: 2 }),
                        ld(0),
                        Node::Op(Instr::BarArrive { bar: 1, warps: 2 }),
                    ],
                },
            ],
        }];
        let k = two_warp_kernel(body, 32, 2);
        verify_kernel(&k, &arch()).expect("clean");
    }

    /// The same loop with the full-CTA barrier at the end of each
    /// iteration is clean — the §4.2 protocol.
    #[test]
    fn generation_recycling_with_full_barrier_is_clean() {
        let body = vec![Node::PointLoop {
            iters: 2,
            body: vec![
                Node::WarpIf {
                    mask: 0b01,
                    body: vec![st(0), Node::Op(Instr::BarArrive { bar: 0, warps: 2 })],
                },
                Node::WarpIf {
                    mask: 0b10,
                    body: vec![Node::Op(Instr::BarSync { bar: 0, warps: 2 }), ld(0)],
                },
                Node::Op(Instr::BarSync { bar: 1, warps: 2 }),
            ],
        }];
        let k = two_warp_kernel(body, 32, 2);
        verify_kernel(&k, &arch()).expect("clean");
    }

    /// Shared footprint beyond the SM.
    #[test]
    fn shared_overflow_is_flagged() {
        let k = two_warp_kernel(vec![st(0)], 7000, 0);
        let errs = verify_kernel(&k, &arch()).unwrap_err();
        assert!(errs.iter().any(|v| v.kind == ViolationKind::Resource), "{errs:?}");
    }

    /// Out-of-bounds shared word (address past `shared_words`).
    #[test]
    fn shared_oob_is_flagged() {
        let k = two_warp_kernel(vec![st(100)], 64, 0);
        let errs = verify_kernel(&k, &arch()).unwrap_err();
        assert!(errs.iter().any(|v| v.kind == ViolationKind::Resource), "{errs:?}");
    }

    /// An arrive whose expected count never fills is an unmatched
    /// arrival.
    #[test]
    fn dangling_arrival_is_flagged() {
        let k = two_warp_kernel(
            vec![Node::WarpIf {
                mask: 0b01,
                body: vec![Node::Op(Instr::BarArrive { bar: 0, warps: 2 })],
            }],
            0,
            1,
        );
        let errs = verify_kernel(&k, &arch()).unwrap_err();
        assert!(
            errs.iter().any(|v| v.kind == ViolationKind::BarrierMismatch),
            "{errs:?}"
        );
    }
}
