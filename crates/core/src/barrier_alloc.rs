//! Named-barrier allocation (paper §4.2): mapping synchronization points
//! onto the 16 physical named barriers per SM.
//!
//! The paper observes this problem is isomorphic to register allocation for
//! SSA-form code (each sync point is a value with a live range in the total
//! order) and therefore solvable in polynomial time. We implement linear-
//! scan interval coloring: a sync point's barrier is live from just before
//! its producer's arrive to its last consumer's wait, and is safely
//! recyclable after the first full-CTA pass barrier following that wait
//! (once every warp has passed a full barrier, no stale arrival can race
//! with a new use). The last physical barrier (15 on a 16-barrier part,
//! 63 on Hopper) is reserved for the pass barriers themselves. The
//! scheduler's pressure pass runs with the same capacity, guaranteeing
//! the available colors suffice.

use crate::sync::Schedule;
use crate::{CResult, CompileError};

/// Maximum physical barriers available for pairwise sync points on a
/// 16-barrier (Fermi/Kepler-class) part — one of the 16 may be claimed by
/// the full-CTA pass barrier. Architectures with larger barrier files
/// (Hopper's 64 entries) pass their own capacity to [`allocate`].
pub const MAX_SYNC_BARRIERS: u8 = 15;

/// Result of barrier allocation.
#[derive(Debug, Clone)]
pub struct BarrierAssignment {
    /// Physical barrier per sync point.
    pub of_sync: Vec<u8>,
    /// Physical barrier id for full-CTA pass barriers (first unused color).
    pub full_barrier: u8,
    /// Number of distinct physical barriers used by sync points alone
    /// (the occupancy-relevant count adds one if pass barriers are used,
    /// footnote 1).
    pub barriers_used: usize,
}

/// Allocate physical barriers for a schedule.
///
/// `max_sync_barriers` is the color budget for pairwise sync points (the
/// arch's barrier-file size minus one reserved for pass barriers). The
/// scheduler's pressure pass is run with the same limit, which guarantees
/// allocation succeeds.
pub fn allocate(schedule: &Schedule, max_sync_barriers: u8) -> CResult<BarrierAssignment> {
    let cap = max_sync_barriers.max(1);
    let mut of_sync = vec![0u8; schedule.sync_points.len()];
    // Active intervals: (release_key, physical barrier).
    let mut active: Vec<(u64, u8)> = Vec::new();
    let mut free: Vec<u8> = (0..cap).rev().collect();
    let mut used_max = 0usize;

    for sp in &schedule.sync_points {
        if schedule.subsumed.get(sp.id).copied().unwrap_or(false) {
            continue;
        }
        // A barrier released by a full barrier at key b can be reused by a
        // sync whose first event (its arrive) lies after b; keep the same
        // boundary as the scheduler's pressure pass (b <= arrive - 1).
        let start = sp.arrive_key.saturating_sub(1);
        // Release barriers whose interval ended before `start`: a barrier
        // is reusable after the first full barrier past its last wait.
        let mut i = 0;
        while i < active.len() {
            if active[i].0 <= start {
                free.push(active[i].1);
                active.swap_remove(i);
            } else {
                i += 1;
            }
        }
        let phys = free.pop().ok_or_else(|| {
            CompileError::ResourceExhausted(format!(
                "out of named barriers at sync point {} ({} sync colors available)",
                sp.id,
                cap
            ))
        })?;
        of_sync[sp.id] = phys;
        // The barrier completes at the sync's unified wait key; it can be
        // reused after the first full-CTA barrier past that point (every
        // warp, including stragglers still waking from this barrier, must
        // pass the full barrier before any warp can reach a later use).
        let release = schedule
            .full_barriers
            .iter()
            .copied()
            .find(|&b| b > sp.wait_key)
            .unwrap_or(u64::MAX);
        active.push((release, phys));
        used_max = used_max.max((cap as usize) - free.len());
    }

    // Pass barriers take the first color never used by a sync point.
    let full_barrier = used_max as u8;
    Ok(BarrierAssignment { of_sync, full_barrier, barriers_used: used_max })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::{Item, Schedule, SyncPoint};

    fn sp(id: usize, arrive: u64, last_wait: u64) -> SyncPoint {
        SyncPoint {
            id,
            vars: vec![id as u32],
            producer_op: id,
            producer_warp: 0,
            consumer_warps: vec![1],
            arrive_key: arrive,
            wait_key: last_wait,
            last_wait_key: last_wait,
        }
    }

    fn schedule_with(syncs: Vec<SyncPoint>, fulls: Vec<u64>) -> Schedule {
        let n_syncs = syncs.len();
        Schedule {
            items: vec![vec![(0, Item::Op(0))]; 2],
            sync_points: syncs,
            var_slot: vec![],
            n_slots: 0,
            full_barriers: fulls,
            merged_syncs: 0,
            subsumed: vec![false; n_syncs],
        }
    }

    #[test]
    fn disjoint_syncs_reuse_after_full_barrier() {
        // Two sequential syncs separated by a full barrier reuse a barrier.
        let s = schedule_with(vec![sp(0, 10, 20), sp(1, 40, 50)], vec![30]);
        let a = allocate(&s, MAX_SYNC_BARRIERS).unwrap();
        assert_eq!(a.of_sync[0], a.of_sync[1]);
    }

    #[test]
    fn overlapping_syncs_get_distinct_barriers() {
        let s = schedule_with(vec![sp(0, 10, 100), sp(1, 20, 110)], vec![200]);
        let a = allocate(&s, MAX_SYNC_BARRIERS).unwrap();
        assert_ne!(a.of_sync[0], a.of_sync[1]);
    }

    #[test]
    fn no_full_barrier_means_no_reuse() {
        // Without any full barrier, intervals never release.
        let syncs: Vec<SyncPoint> = (0..10).map(|i| sp(i, 10 * i as u64 + 10, 10 * i as u64 + 15)).collect();
        let s = schedule_with(syncs, vec![]);
        let a = allocate(&s, MAX_SYNC_BARRIERS).unwrap();
        let mut ids: Vec<u8> = a.of_sync.clone();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 10, "each sync needs its own barrier");
    }

    #[test]
    fn fifteen_live_syncs_exhaust() {
        let syncs: Vec<SyncPoint> = (0..16).map(|i| sp(i, 10, 1000)).collect();
        let s = schedule_with(syncs, vec![]);
        assert!(allocate(&s, MAX_SYNC_BARRIERS).is_err());
    }

    #[test]
    fn heavy_reuse_stays_within_16() {
        // 100 sequential syncs with a full barrier between consecutive ones.
        let syncs: Vec<SyncPoint> = (0..100).map(|i| sp(i, 100 * i as u64 + 50, 100 * i as u64 + 60)).collect();
        let fulls: Vec<u64> = (0..100).map(|i| 100 * i as u64 + 90).collect();
        let s = schedule_with(syncs, fulls);
        let a = allocate(&s, MAX_SYNC_BARRIERS).unwrap();
        assert!(a.barriers_used <= 16);
        assert!(a.of_sync.iter().all(|&b| b < MAX_SYNC_BARRIERS));
        assert!(a.full_barrier >= *a.of_sync.iter().max().unwrap());
    }
}
