//! Kernel-level analytical performance model (compiler-side wrapper).
//!
//! [`gpu_sim::model`] predicts a CTA's cycle attribution from static
//! features of the flattened program; this module lifts that to the
//! quantity autotuning actually ranks by — *predicted seconds for a
//! grid* — by feeding the model's predicted event counts through the
//! same [`gpu_sim::timing::estimate`] the simulator uses for measured
//! counts. Predicted and simulated seconds are therefore directly
//! comparable: they differ only where the model had to estimate
//! (constant-cache hits, coalescing) rather than count. The simulated
//! side of that comparison comes from the engine fast path
//! (`gpu_sim::engine`), whose bulk per-segment accounting reproduces
//! interpreter `EventCounts` bit-for-bit, so model-accuracy audits are
//! unaffected by which executor ran the probe.

use crate::{CompileError, CResult};
use gpu_sim::arch::GpuArch;
use gpu_sim::isa::Kernel;
use gpu_sim::model::{predict as model_predict, ModelProfile};
use gpu_sim::timing::SimReport;

/// A model prediction for one kernel on one architecture and grid: the
/// per-warp/per-group cycle attribution plus the timing extrapolation.
#[derive(Debug, Clone)]
pub struct ModelReport {
    /// The static model's CTA-level prediction (cycles, counts, groups).
    pub profile: ModelProfile,
    /// Timing-model extrapolation of the predicted counts to the grid —
    /// `report.seconds` is the ranking metric for guided autotuning.
    pub report: SimReport,
}

impl ModelReport {
    /// Predicted wall-clock seconds for the grid (the autotune metric).
    pub fn seconds(&self) -> f64 {
        self.report.seconds
    }
}

/// Predict `kernel`'s performance on `arch` for a `grid_points`-point
/// launch without running the interpreter.
///
/// Errors with [`CompileError::Internal`] only on barrier-protocol
/// violations the interpreter would also reject — compiled and verified
/// kernels never hit them.
pub fn predict(kernel: &Kernel, arch: &GpuArch, grid_points: usize) -> CResult<ModelReport> {
    let profile = model_predict(kernel, arch).map_err(CompileError::Internal)?;
    let report = gpu_sim::timing::estimate(kernel, arch, &profile.counts, grid_points);
    Ok(ModelReport { profile, report })
}

/// Scoring hook for search loops ([`crate::search`], guided autotuning):
/// just the predicted seconds, `None` when the model rejects the kernel
/// (it never does for verified compiles). One compile + one call of this
/// is a full model evaluation — microseconds, no interpretation.
pub fn predict_seconds(kernel: &Kernel, arch: &GpuArch, grid_points: usize) -> Option<f64> {
    predict(kernel, arch, grid_points).ok().map(|m| m.seconds())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{Compiler, Variant};
    use crate::config::CompileOptions;
    use crate::kernels::viscosity::viscosity_dfg;
    use chemkin::reference::tables::ViscosityTables;
    use chemkin::synth;

    fn small_kernel(arch: &GpuArch) -> Kernel {
        let m = synth::via_text(&synth::SynthConfig {
            name: "pm".into(),
            n_species: 6,
            n_reactions: 8,
            n_qssa: 0,
            n_stiff: 0,
            seed: 11,
        });
        let dfg = viscosity_dfg(&ViscosityTables::build(&m), 3);
        Compiler::new(arch)
            .options(CompileOptions::with_warps(3))
            .compile(&dfg, Variant::WarpSpecialized)
            .expect("compiles")
            .kernel
    }

    #[test]
    fn predicted_seconds_are_positive_and_deterministic() {
        let arch = GpuArch::kepler_k20c();
        let k = small_kernel(&arch);
        let a = predict(&k, &arch, 4096).unwrap();
        let b = predict(&k, &arch, 4096).unwrap();
        assert!(a.seconds() > 0.0);
        assert_eq!(a.seconds().to_bits(), b.seconds().to_bits());
        a.profile.cta.check_attribution().unwrap();
    }

    #[test]
    fn predicted_issue_counts_match_simulated_exactly() {
        // Streams are static, so the issue-side counts must agree with
        // an interpreted probe bit-for-bit.
        let arch = GpuArch::fermi_c2070();
        let k = small_kernel(&arch);
        let m = predict(&k, &arch, k.points_per_cta).unwrap();
        let g = chemkin::state::GridState::random(
            chemkin::state::GridDims { nx: k.points_per_cta, ny: 1, nz: 1 },
            6,
            99,
        );
        let arrays: Vec<&[f64]> =
            crate::kernels::launch_arrays(&k.global_arrays, &g).expect("known arrays");
        let out = gpu_sim::launch(
            &k,
            &arch,
            &gpu_sim::LaunchInputs { arrays },
            k.points_per_cta,
            gpu_sim::LaunchMode::TimingOnly,
        )
        .expect("launches");
        let sim = &out.report.counts;
        let pred = &m.profile.counts;
        assert_eq!(pred.issue_slots, sim.issue_slots);
        assert_eq!(pred.dp_slots, sim.dp_slots);
        assert_eq!(pred.flops, sim.flops);
        assert_eq!(pred.warp_branches, sim.warp_branches);
        assert_eq!(pred.barrier_arrives, sim.barrier_arrives);
        assert_eq!(pred.barrier_syncs, sim.barrier_syncs);
        assert_eq!(pred.local_bytes, sim.local_bytes);
        assert_eq!(pred.icache_misses, sim.icache_misses);
        assert_eq!(pred.icache_fetches, sim.icache_fetches);
    }
}
