//! Brute-force exhaustive autotuning (paper §4).
//!
//! "We used a brute-force exhaustive autotuning script to drive Singe when
//! tuning our kernels. ... the search space was never more than a few
//! hundred points because warp-specialized decisions dealt with very
//! coarse-grained properties such as the number of target warps."
//!
//! Candidates are compiled and scored with the simulator's timing model on
//! a representative grid; the best configuration wins.

use crate::codegen::{compile_warp_specialized, Compiled};
use crate::config::{CompileOptions, Placement};
use crate::dfg::Dfg;
use crate::pool::run_ordered;
use crate::CResult;
use gpu_sim::arch::GpuArch;
use gpu_sim::launch::{launch, LaunchInputs, LaunchMode};

/// Why a candidate produced no time: compilation and execution failures
/// are different autotuner outcomes (a config that does not fit is a legal
/// probe result; a kernel that compiled but failed to launch points at a
/// harness or compiler bug) and must not be conflated.
#[derive(Debug, Clone, PartialEq)]
pub enum TuneFailure {
    /// The candidate did not compile (message from the compiler).
    Compile(String),
    /// The candidate compiled but the probe launch failed (message from
    /// the simulator).
    Launch(String),
}

impl std::fmt::Display for TuneFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneFailure::Compile(m) => write!(f, "did not compile: {m}"),
            TuneFailure::Launch(m) => write!(f, "compiled but failed to run: {m}"),
        }
    }
}

/// One autotuning result row.
#[derive(Debug, Clone)]
pub struct TunePoint {
    /// The options evaluated.
    pub options: CompileOptions,
    /// Simulated kernel seconds on the probe grid (None = the candidate
    /// failed; see `failure` for the distinct reason).
    pub seconds: Option<f64>,
    /// Why `seconds` is None (None when the candidate ran).
    pub failure: Option<TuneFailure>,
}

/// Autotuning outcome: every point probed plus the winner.
#[derive(Debug)]
pub struct TuneResult {
    /// All probed points.
    pub points: Vec<TunePoint>,
    /// The winning compile (best simulated time).
    pub best: Compiled,
    /// The winning options.
    pub best_options: CompileOptions,
}

/// Build the default candidate grid: warp counts x point iterations,
/// holding the placement strategy fixed.
pub fn candidate_grid(placement: Placement) -> Vec<CompileOptions> {
    let mut v = Vec::new();
    for &warps in &[2usize, 3, 4, 6, 8, 10, 12, 16] {
        for &iters in &[1u32, 4] {
            v.push(CompileOptions {
                warps,
                point_iters: iters,
                placement,
                ..Default::default()
            });
        }
    }
    v
}

/// Exhaustively evaluate `candidates` for `dfg` on `arch`; the probe grid
/// covers `probe_points` points (rounded up to a whole number of CTAs).
///
/// Candidates are evaluated on [`run_ordered`]'s worker pool (`jobs` from
/// [`crate::pool::default_jobs`]) and folded in input order, so the winner
/// — first candidate with the strictly best simulated time — is identical
/// to the serial loop's at any worker count.
pub fn autotune(
    dfg: &Dfg,
    arch: &GpuArch,
    candidates: &[CompileOptions],
    probe_points: usize,
    inputs_for: &(dyn Fn(&gpu_sim::isa::Kernel, usize) -> Vec<Vec<f64>> + Sync),
) -> CResult<TuneResult> {
    autotune_with_jobs(dfg, arch, candidates, probe_points, inputs_for, crate::pool::default_jobs())
}

/// [`autotune`] with an explicit worker count.
pub fn autotune_with_jobs(
    dfg: &Dfg,
    arch: &GpuArch,
    candidates: &[CompileOptions],
    probe_points: usize,
    inputs_for: &(dyn Fn(&gpu_sim::isa::Kernel, usize) -> Vec<Vec<f64>> + Sync),
    jobs: usize,
) -> CResult<TuneResult> {
    let evaluated: Vec<(TunePoint, Option<Compiled>)> =
        run_ordered(jobs, candidates.len(), |i| {
            let cand = &candidates[i];
            let compiled = match compile_warp_specialized(dfg, cand, arch, None) {
                Ok(c) => c,
                Err(e) => {
                    let p = TunePoint {
                        options: cand.clone(),
                        seconds: None,
                        failure: Some(TuneFailure::Compile(e.to_string())),
                    };
                    return (p, None);
                }
            };
            let ppc = compiled.kernel.points_per_cta;
            let grid = probe_points.div_ceil(ppc) * ppc;
            let owned = inputs_for(&compiled.kernel, grid);
            let arrays: Vec<&[f64]> = owned.iter().map(|v| v.as_slice()).collect();
            match launch(&compiled.kernel, arch, &LaunchInputs { arrays }, grid, LaunchMode::TimingOnly)
            {
                Ok(out) => {
                    let p = TunePoint {
                        options: cand.clone(),
                        seconds: Some(out.report.seconds),
                        failure: None,
                    };
                    (p, Some(compiled))
                }
                Err(e) => {
                    let p = TunePoint {
                        options: cand.clone(),
                        seconds: None,
                        failure: Some(TuneFailure::Launch(e.to_string())),
                    };
                    (p, None)
                }
            }
        });

    let mut points = Vec::with_capacity(evaluated.len());
    let mut best: Option<(f64, Compiled, CompileOptions)> = None;
    for (point, compiled) in evaluated {
        if let (Some(sec), Some(c)) = (point.seconds, compiled) {
            // Strict `<` keeps the serial first-best-wins winner.
            if best.as_ref().is_none_or(|(b, _, _)| sec < *b) {
                best = Some((sec, c, point.options.clone()));
            }
        }
        points.push(point);
    }
    let (_, best, best_options) = best.ok_or_else(|| {
        crate::CompileError::ResourceExhausted("no autotune candidate compiled".into())
    })?;
    Ok(TuneResult { points, best, best_options })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::launch_arrays;
    use crate::kernels::viscosity::viscosity_dfg;
    use chemkin::reference::tables::ViscosityTables;
    use chemkin::state::{GridDims, GridState};
    use chemkin::synth;

    #[test]
    fn autotune_picks_a_valid_config() {
        let m = synth::via_text(&synth::SynthConfig {
            name: "at".into(),
            n_species: 6,
            n_reactions: 8,
            n_qssa: 0,
            n_stiff: 0,
            seed: 4,
        });
        let t = ViscosityTables::build(&m);
        let d = viscosity_dfg(&t, 3);
        let arch = GpuArch::kepler_k20c();
        let cands: Vec<CompileOptions> = [2usize, 3, 4]
            .iter()
            .map(|&w| CompileOptions::with_warps(w))
            .collect();
        let r = autotune(&d, &arch, &cands, 256, &|k, pts| {
            let g = GridState::random(GridDims { nx: pts, ny: 1, nz: 1 }, 6, 1);
            launch_arrays(&k.global_arrays, &g)
                .expect("known arrays")
                .iter()
                .map(|s| s.to_vec())
                .collect()
        })
        .unwrap();
        assert_eq!(r.points.len(), 3);
        assert!(r.points.iter().any(|p| p.seconds.is_some()));
        assert!(r.best_options.warps >= 2);
    }

    #[test]
    fn candidate_grid_has_coarse_dimensions() {
        let g = candidate_grid(Placement::Store);
        assert_eq!(g.len(), 16);
    }

    #[test]
    fn failed_candidates_record_distinct_reasons() {
        let m = synth::via_text(&synth::SynthConfig {
            name: "atf".into(),
            n_species: 6,
            n_reactions: 8,
            n_qssa: 0,
            n_stiff: 0,
            seed: 4,
        });
        let t = ViscosityTables::build(&m);
        let d = viscosity_dfg(&t, 3);
        let arch = GpuArch::kepler_k20c();
        // Absurd warp count: cannot fit the SM, must record a Compile
        // failure (not a bare seconds=None).
        let cands = vec![CompileOptions::with_warps(3), CompileOptions::with_warps(4096)];
        let r = autotune(&d, &arch, &cands, 256, &|k, pts| {
            let g = GridState::random(GridDims { nx: pts, ny: 1, nz: 1 }, 6, 1);
            launch_arrays(&k.global_arrays, &g)
                .expect("known arrays")
                .iter()
                .map(|s| s.to_vec())
                .collect()
        })
        .unwrap();
        assert!(r.points[0].seconds.is_some());
        assert!(r.points[0].failure.is_none());
        assert!(r.points[1].seconds.is_none());
        assert!(matches!(r.points[1].failure, Some(TuneFailure::Compile(_))));
    }

    #[test]
    fn winner_is_identical_across_job_counts() {
        let m = synth::via_text(&synth::SynthConfig {
            name: "atj".into(),
            n_species: 6,
            n_reactions: 8,
            n_qssa: 0,
            n_stiff: 0,
            seed: 4,
        });
        let t = ViscosityTables::build(&m);
        let d = viscosity_dfg(&t, 3);
        let arch = GpuArch::kepler_k20c();
        let cands: Vec<CompileOptions> =
            [2usize, 3, 4, 6].iter().map(|&w| CompileOptions::with_warps(w)).collect();
        let inputs = |k: &gpu_sim::isa::Kernel, pts: usize| {
            let g = GridState::random(GridDims { nx: pts, ny: 1, nz: 1 }, 6, 1);
            launch_arrays(&k.global_arrays, &g)
                .expect("known arrays")
                .iter()
                .map(|s| s.to_vec())
                .collect::<Vec<_>>()
        };
        let serial = autotune_with_jobs(&d, &arch, &cands, 256, &inputs, 1).unwrap();
        let parallel = autotune_with_jobs(&d, &arch, &cands, 256, &inputs, 8).unwrap();
        assert_eq!(serial.best_options.warps, parallel.best_options.warps);
        let s: Vec<Option<f64>> = serial.points.iter().map(|p| p.seconds).collect();
        let p: Vec<Option<f64>> = parallel.points.iter().map(|p| p.seconds).collect();
        assert_eq!(s, p);
    }
}
