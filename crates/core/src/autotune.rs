//! Brute-force exhaustive autotuning (paper §4).
//!
//! "We used a brute-force exhaustive autotuning script to drive Singe when
//! tuning our kernels. ... the search space was never more than a few
//! hundred points because warp-specialized decisions dealt with very
//! coarse-grained properties such as the number of target warps."
//!
//! Candidates are compiled and scored with the simulator's timing model on
//! a representative grid; the best configuration wins. Probe launches use
//! `LaunchMode::TimingOnly`, whose representative CTA runs on the
//! segment-compiled engine (`gpu_sim::engine`) rather than the
//! per-instruction interpreter, so sweeping a few hundred candidates
//! stays cheap.
//!
//! Two search modes are provided:
//!
//! * [`autotune`] — the paper's exhaustive sweep: every candidate is
//!   compiled *and* simulated.
//! * [`autotune_guided`] — model-guided pruning: every candidate is
//!   compiled and ranked by the static performance model
//!   ([`crate::perfmodel`], no interpretation), and only the top-K
//!   predictions are simulated. Both modes record each point's
//!   `predicted_seconds` next to its measured seconds, so the model's
//!   ranking quality is auditable from any [`TuneResult`].

use crate::codegen::{compile_warp_specialized, Compiled};
use crate::config::{CompileOptions, Placement};
use crate::dfg::Dfg;
use crate::pool::run_ordered;
use crate::CResult;
use gpu_sim::arch::GpuArch;
use gpu_sim::launch::{launch, LaunchInputs, LaunchMode};

/// Why a candidate produced no time: compilation and execution failures
/// are different autotuner outcomes (a config that does not fit is a legal
/// probe result; a kernel that compiled but failed to launch points at a
/// harness or compiler bug) and must not be conflated.
#[derive(Debug, Clone, PartialEq)]
pub enum TuneFailure {
    /// The candidate did not compile (message from the compiler).
    Compile(String),
    /// The candidate compiled but the probe launch failed (message from
    /// the simulator).
    Launch(String),
}

impl std::fmt::Display for TuneFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneFailure::Compile(m) => write!(f, "did not compile: {m}"),
            TuneFailure::Launch(m) => write!(f, "compiled but failed to run: {m}"),
        }
    }
}

/// One autotuning result row.
#[derive(Debug, Clone)]
pub struct TunePoint {
    /// The options evaluated.
    pub options: CompileOptions,
    /// Simulated kernel seconds on the probe grid (None = the candidate
    /// failed — see `failure` — or was pruned by model-guided search
    /// before simulation).
    pub seconds: Option<f64>,
    /// Seconds predicted by the static performance model for the same
    /// probe grid (None only if the candidate did not compile).
    pub predicted_seconds: Option<f64>,
    /// Why `seconds` is None (None when the candidate ran or was pruned).
    pub failure: Option<TuneFailure>,
}

/// Autotuning outcome: every point probed plus the winner.
#[derive(Debug)]
pub struct TuneResult {
    /// All probed points.
    pub points: Vec<TunePoint>,
    /// The winning compile (best simulated time).
    pub best: Compiled,
    /// The winning options.
    pub best_options: CompileOptions,
}

/// The warp-count axis every candidate grid shares (paper §4: "the search
/// space was never more than a few hundred points").
pub const GRID_WARPS: &[usize] = &[2, 3, 4, 6, 8, 10, 12, 16];

/// The one grid builder behind every candidate menu: the cartesian product
/// of `GRID_WARPS` x `iters` x `depths`, holding the placement fixed.
/// Depth only matters on streamed schedules, so K > 1 candidates are
/// generated only where `point_iters` can absorb the depth (the compiler
/// would clamp K to the stream depth anyway, producing duplicates).
///
/// [`candidate_grid`], [`candidate_grid_extended`],
/// [`candidate_grid_pipelined`], and the schedule search's seed beam
/// ([`crate::search::SearchSpace::seeds`]) are all parameterizations of
/// this function — a single source of truth for the enumeration order,
/// which the deterministic tuners depend on for first-best-wins ties.
pub fn grid_options(placement: Placement, iters: &[u32], depths: &[usize]) -> Vec<CompileOptions> {
    let mut v = Vec::new();
    for &warps in GRID_WARPS {
        for &iters in iters {
            for &k in depths {
                if k as u32 > iters {
                    continue; // the compiler would clamp K to the stream depth
                }
                v.push(CompileOptions {
                    warps,
                    point_iters: iters,
                    placement,
                    pipeline_depth: k,
                    ..Default::default()
                });
            }
        }
    }
    v
}

/// The pipeline-depth menu an architecture's named-barrier file supports:
/// wider where the file is large (every sync color costs K ids instead of
/// one). Shared by [`candidate_grid_pipelined`] and the schedule search.
pub fn depth_menu(arch: &GpuArch) -> &'static [usize] {
    if arch.named_barriers_per_sm >= 64 {
        &[1, 2, 4]
    } else {
        &[1, 2]
    }
}

/// Build the default candidate grid: warp counts x point iterations,
/// holding the placement strategy fixed.
pub fn candidate_grid(placement: Placement) -> Vec<CompileOptions> {
    grid_options(placement, &[1, 4], &[1])
}

/// [`candidate_grid`] with a finer streaming-depth axis (24 points:
/// 8 warp counts x 3 point-iteration depths). The denser grid is what
/// model-guided search is for — with the default top-K of
/// [`GUIDED_TOP_K`], [`autotune_guided`] simulates at most `5/24 ≈ 21%`
/// of it.
pub fn candidate_grid_extended(placement: Placement) -> Vec<CompileOptions> {
    grid_options(placement, &[1, 2, 4], &[1])
}

/// [`candidate_grid`] with the pipeline-depth axis unlocked (§5.2 K-stage
/// multi-buffered schedules); the depth menu comes from [`depth_menu`].
/// Candidates whose rotated-barrier demand still exceeds the file are
/// legal probes — they record a `Compile` failure and lose.
pub fn candidate_grid_pipelined(placement: Placement, arch: &GpuArch) -> Vec<CompileOptions> {
    grid_options(placement, &[1, 4], depth_menu(arch))
}

/// Default number of top-ranked candidates [`autotune_guided`] simulates.
/// [`crate::search::SearchBudget`] defaults its `sim_top_k` to this, so
/// the budgeted entry points reproduce the historical behavior.
pub const GUIDED_TOP_K: usize = 5;

/// Exhaustively evaluate `candidates` for `dfg` on `arch`; the probe grid
/// covers `probe_points` points (rounded up to a whole number of CTAs).
///
/// Candidates are evaluated on [`run_ordered`]'s worker pool (`jobs` from
/// [`crate::pool::default_jobs`]) and folded in input order, so the winner
/// — first candidate with the strictly best simulated time — is identical
/// to the serial loop's at any worker count.
pub fn autotune(
    dfg: &Dfg,
    arch: &GpuArch,
    candidates: &[CompileOptions],
    probe_points: usize,
    inputs_for: &(dyn Fn(&gpu_sim::isa::Kernel, usize) -> Vec<Vec<f64>> + Sync),
) -> CResult<TuneResult> {
    autotune_with_jobs(dfg, arch, candidates, probe_points, inputs_for, crate::pool::default_jobs())
}

/// [`autotune`] with an explicit worker count.
pub fn autotune_with_jobs(
    dfg: &Dfg,
    arch: &GpuArch,
    candidates: &[CompileOptions],
    probe_points: usize,
    inputs_for: &(dyn Fn(&gpu_sim::isa::Kernel, usize) -> Vec<Vec<f64>> + Sync),
    jobs: usize,
) -> CResult<TuneResult> {
    let evaluated: Vec<(TunePoint, Option<Compiled>)> =
        run_ordered(jobs, candidates.len(), |i| {
            let cand = &candidates[i];
            let compiled = match compile_warp_specialized(dfg, cand, arch, None) {
                Ok(c) => c,
                Err(e) => {
                    let p = TunePoint {
                        options: cand.clone(),
                        seconds: None,
                        predicted_seconds: None,
                        failure: Some(TuneFailure::Compile(e.to_string())),
                    };
                    return (p, None);
                }
            };
            let ppc = compiled.kernel.points_per_cta;
            let grid = probe_points.div_ceil(ppc) * ppc;
            let predicted = predict_seconds(&compiled, arch, grid);
            let owned = inputs_for(&compiled.kernel, grid);
            let arrays: Vec<&[f64]> = owned.iter().map(|v| v.as_slice()).collect();
            match launch(&compiled.kernel, arch, &LaunchInputs { arrays }, grid, LaunchMode::TimingOnly)
            {
                Ok(out) => {
                    let p = TunePoint {
                        options: cand.clone(),
                        seconds: Some(out.report.seconds),
                        predicted_seconds: predicted,
                        failure: None,
                    };
                    (p, Some(compiled))
                }
                Err(e) => {
                    let p = TunePoint {
                        options: cand.clone(),
                        seconds: None,
                        predicted_seconds: predicted,
                        failure: Some(TuneFailure::Launch(e.to_string())),
                    };
                    (p, None)
                }
            }
        });

    let mut points = Vec::with_capacity(evaluated.len());
    let mut best: Option<(f64, Compiled, CompileOptions)> = None;
    for (point, compiled) in evaluated {
        if let (Some(sec), Some(c)) = (point.seconds, compiled) {
            // Strict `<` keeps the serial first-best-wins winner.
            if best.as_ref().is_none_or(|(b, _, _)| sec < *b) {
                best = Some((sec, c, point.options.clone()));
            }
        }
        points.push(point);
    }
    let (_, best, best_options) = best.ok_or_else(|| {
        crate::CompileError::ResourceExhausted("no autotune candidate compiled".into())
    })?;
    Ok(TuneResult { points, best, best_options })
}

/// Predicted probe-grid seconds for a compiled candidate (None if the
/// model rejects the kernel — it never does for verified compiles).
fn predict_seconds(compiled: &Compiled, arch: &GpuArch, grid: usize) -> Option<f64> {
    crate::perfmodel::predict(&compiled.kernel, arch, grid).ok().map(|m| m.seconds())
}

/// Model-guided autotuning: compile and *predict* every candidate with
/// the static performance model, then simulate only the `top_k`
/// best-predicted ones; the winner is the best **simulated** time among
/// those. Every point still records its `predicted_seconds`, so the
/// pruning decision is auditable; pruned points carry neither seconds
/// nor a failure.
///
/// With `top_k = `[`GUIDED_TOP_K`] over [`candidate_grid_extended`] this
/// simulates ≤ 25% of the grid.
pub fn autotune_guided(
    dfg: &Dfg,
    arch: &GpuArch,
    candidates: &[CompileOptions],
    probe_points: usize,
    top_k: usize,
    inputs_for: &(dyn Fn(&gpu_sim::isa::Kernel, usize) -> Vec<Vec<f64>> + Sync),
) -> CResult<TuneResult> {
    autotune_guided_with_jobs(
        dfg,
        arch,
        candidates,
        probe_points,
        top_k,
        inputs_for,
        crate::pool::default_jobs(),
    )
}

/// [`autotune_guided`] with the simulation cap taken from a
/// [`crate::search::SearchBudget`] instead of a bare integer (`budget.sim_top_k`; the
/// default budget reproduces [`GUIDED_TOP_K`]). The budget's beam/round
/// fields are ignored here — they drive [`crate::search`].
pub fn autotune_guided_budget(
    dfg: &Dfg,
    arch: &GpuArch,
    candidates: &[CompileOptions],
    probe_points: usize,
    budget: &crate::search::SearchBudget,
    inputs_for: &(dyn Fn(&gpu_sim::isa::Kernel, usize) -> Vec<Vec<f64>> + Sync),
) -> CResult<TuneResult> {
    autotune_guided_budget_with_jobs(
        dfg,
        arch,
        candidates,
        probe_points,
        budget,
        inputs_for,
        crate::pool::default_jobs(),
    )
}

/// [`autotune_guided_budget`] with an explicit worker count.
pub fn autotune_guided_budget_with_jobs(
    dfg: &Dfg,
    arch: &GpuArch,
    candidates: &[CompileOptions],
    probe_points: usize,
    budget: &crate::search::SearchBudget,
    inputs_for: &(dyn Fn(&gpu_sim::isa::Kernel, usize) -> Vec<Vec<f64>> + Sync),
    jobs: usize,
) -> CResult<TuneResult> {
    autotune_guided_with_jobs(dfg, arch, candidates, probe_points, budget.sim_top_k, inputs_for, jobs)
}

/// [`autotune_guided`] with an explicit worker count. Like
/// [`autotune_with_jobs`], ranking and winner folds are in candidate
/// input order, so results are identical at any worker count.
#[allow(clippy::type_complexity)]
pub fn autotune_guided_with_jobs(
    dfg: &Dfg,
    arch: &GpuArch,
    candidates: &[CompileOptions],
    probe_points: usize,
    top_k: usize,
    inputs_for: &(dyn Fn(&gpu_sim::isa::Kernel, usize) -> Vec<Vec<f64>> + Sync),
    jobs: usize,
) -> CResult<TuneResult> {
    let n = candidates.len();
    // Phase 1: compile everything, predict with the static model only.
    let mut compiled: Vec<Result<(Compiled, Option<f64>), String>> =
        run_ordered(jobs, n, |i| match compile_warp_specialized(dfg, &candidates[i], arch, None) {
            Ok(c) => {
                let ppc = c.kernel.points_per_cta;
                let grid = probe_points.div_ceil(ppc) * ppc;
                let predicted = predict_seconds(&c, arch, grid);
                Ok((c, predicted))
            }
            Err(e) => Err(e.to_string()),
        });

    // Rank compiled candidates by predicted seconds (unpredictable ones
    // last, ties to the lower candidate index) and keep the top K.
    let mut ranked: Vec<usize> = (0..n).filter(|&i| compiled[i].is_ok()).collect();
    ranked.sort_by(|&a, &b| {
        let pa = compiled[a].as_ref().map(|(_, p)| *p).unwrap_or(None);
        let pb = compiled[b].as_ref().map(|(_, p)| *p).unwrap_or(None);
        match (pa, pb) {
            (Some(x), Some(y)) => {
                x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
            }
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (None, None) => a.cmp(&b),
        }
    });
    let compiled_ok = ranked.len();
    let chosen: Vec<usize> = ranked.into_iter().take(top_k).collect();
    let dropped = compiled_ok - chosen.len();
    if dropped > 0 {
        // The pruning decision is an explicit, logged cap — never silent.
        eprintln!(
            "[autotune-guided: simulating {} of {compiled_ok} compiled candidates, \
             {dropped} dropped by the model ranking]",
            chosen.len()
        );
    }

    // Phase 2: simulate only the chosen candidates.
    let sims: Vec<Result<f64, String>> = run_ordered(jobs, chosen.len(), |j| {
        let (c, _) = compiled[chosen[j]].as_ref().expect("chosen candidates compiled");
        let ppc = c.kernel.points_per_cta;
        let grid = probe_points.div_ceil(ppc) * ppc;
        let owned = inputs_for(&c.kernel, grid);
        let arrays: Vec<&[f64]> = owned.iter().map(|v| v.as_slice()).collect();
        match launch(&c.kernel, arch, &LaunchInputs { arrays }, grid, LaunchMode::TimingOnly) {
            Ok(out) => Ok(out.report.seconds),
            Err(e) => Err(e.to_string()),
        }
    });
    let mut sim_of: Vec<Option<&Result<f64, String>>> = vec![None; n];
    for (j, res) in sims.iter().enumerate() {
        sim_of[chosen[j]] = Some(res);
    }

    let mut points = Vec::with_capacity(n);
    let mut best: Option<(f64, usize)> = None;
    for i in 0..n {
        let point = match &compiled[i] {
            Err(msg) => TunePoint {
                options: candidates[i].clone(),
                seconds: None,
                predicted_seconds: None,
                failure: Some(TuneFailure::Compile(msg.clone())),
            },
            Ok((_, predicted)) => match sim_of[i] {
                Some(Ok(sec)) => {
                    // Strict `<` keeps first-best-wins in input order.
                    if best.is_none_or(|(b, _)| *sec < b) {
                        best = Some((*sec, i));
                    }
                    TunePoint {
                        options: candidates[i].clone(),
                        seconds: Some(*sec),
                        predicted_seconds: *predicted,
                        failure: None,
                    }
                }
                Some(Err(e)) => TunePoint {
                    options: candidates[i].clone(),
                    seconds: None,
                    predicted_seconds: *predicted,
                    failure: Some(TuneFailure::Launch(e.clone())),
                },
                None => TunePoint {
                    options: candidates[i].clone(),
                    seconds: None,
                    predicted_seconds: *predicted,
                    failure: None,
                },
            },
        };
        points.push(point);
    }
    let (_, bi) = best.ok_or_else(|| {
        crate::CompileError::ResourceExhausted("no model-guided autotune candidate ran".into())
    })?;
    let (best, _) = std::mem::replace(&mut compiled[bi], Err(String::new()))
        .expect("winner was compiled");
    Ok(TuneResult { points, best, best_options: candidates[bi].clone() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::launch_arrays;
    use crate::kernels::viscosity::viscosity_dfg;
    use chemkin::reference::tables::ViscosityTables;
    use chemkin::state::{GridDims, GridState};
    use chemkin::synth;

    #[test]
    fn autotune_picks_a_valid_config() {
        let m = synth::via_text(&synth::SynthConfig {
            name: "at".into(),
            n_species: 6,
            n_reactions: 8,
            n_qssa: 0,
            n_stiff: 0,
            seed: 4,
        });
        let t = ViscosityTables::build(&m);
        let d = viscosity_dfg(&t, 3);
        let arch = GpuArch::kepler_k20c();
        let cands: Vec<CompileOptions> = [2usize, 3, 4]
            .iter()
            .map(|&w| CompileOptions::with_warps(w))
            .collect();
        let r = autotune(&d, &arch, &cands, 256, &|k, pts| {
            let g = GridState::random(GridDims { nx: pts, ny: 1, nz: 1 }, 6, 1);
            launch_arrays(&k.global_arrays, &g)
                .expect("known arrays")
                .iter()
                .map(|s| s.to_vec())
                .collect()
        })
        .unwrap();
        assert_eq!(r.points.len(), 3);
        assert!(r.points.iter().any(|p| p.seconds.is_some()));
        assert!(r.best_options.warps >= 2);
    }

    #[test]
    fn candidate_grid_has_coarse_dimensions() {
        let g = candidate_grid(Placement::Store);
        assert_eq!(g.len(), 16);
    }

    #[test]
    fn failed_candidates_record_distinct_reasons() {
        let m = synth::via_text(&synth::SynthConfig {
            name: "atf".into(),
            n_species: 6,
            n_reactions: 8,
            n_qssa: 0,
            n_stiff: 0,
            seed: 4,
        });
        let t = ViscosityTables::build(&m);
        let d = viscosity_dfg(&t, 3);
        let arch = GpuArch::kepler_k20c();
        // Absurd warp count: cannot fit the SM, must record a Compile
        // failure (not a bare seconds=None).
        let cands = vec![CompileOptions::with_warps(3), CompileOptions::with_warps(4096)];
        let r = autotune(&d, &arch, &cands, 256, &|k, pts| {
            let g = GridState::random(GridDims { nx: pts, ny: 1, nz: 1 }, 6, 1);
            launch_arrays(&k.global_arrays, &g)
                .expect("known arrays")
                .iter()
                .map(|s| s.to_vec())
                .collect()
        })
        .unwrap();
        assert!(r.points[0].seconds.is_some());
        assert!(r.points[0].failure.is_none());
        assert!(r.points[1].seconds.is_none());
        assert!(matches!(r.points[1].failure, Some(TuneFailure::Compile(_))));
    }

    #[test]
    fn compile_and_launch_failures_are_distinct() {
        let m = synth::via_text(&synth::SynthConfig {
            name: "atcl".into(),
            n_species: 6,
            n_reactions: 8,
            n_qssa: 0,
            n_stiff: 0,
            seed: 4,
        });
        let t = ViscosityTables::build(&m);
        let d = viscosity_dfg(&t, 3);
        let arch = GpuArch::kepler_k20c();
        // Candidate 0: valid. Candidate 1: a one-slot buffered placement
        // that cannot fit the kernel's simultaneously-live values ->
        // Compile failure. Candidate 2: compiles, but the harness hands it
        // truncated input arrays -> Launch failure.
        let cands = vec![
            CompileOptions::with_warps(3),
            CompileOptions::builder().warps(3).placement(Placement::Buffer(1)).build(),
            CompileOptions::with_warps(4),
        ];
        let r = autotune(&d, &arch, &cands, 256, &|k, pts| {
            let g = GridState::random(GridDims { nx: pts, ny: 1, nz: 1 }, 6, 1);
            let mut arrays: Vec<Vec<f64>> = launch_arrays(&k.global_arrays, &g)
                .expect("known arrays")
                .iter()
                .map(|s| s.to_vec())
                .collect();
            if k.warps_per_cta == 4 {
                // Sabotage only this candidate's probe inputs.
                for a in &mut arrays {
                    a.truncate(1);
                }
            }
            arrays
        })
        .unwrap();

        // The valid probe: a time, no failure.
        assert!(r.points[0].seconds.is_some());
        assert!(r.points[0].failure.is_none());
        // The unfittable placement: Compile, never Launch.
        assert!(r.points[1].seconds.is_none());
        assert!(matches!(r.points[1].failure, Some(TuneFailure::Compile(_))));
        // The sabotaged probe: Launch, never Compile.
        assert!(r.points[2].seconds.is_none());
        assert!(matches!(r.points[2].failure, Some(TuneFailure::Launch(_))));
        // The two failure kinds render distinctly.
        let c = r.points[1].failure.as_ref().unwrap().to_string();
        let l = r.points[2].failure.as_ref().unwrap().to_string();
        assert!(c.starts_with("did not compile:"), "{c}");
        assert!(l.starts_with("compiled but failed to run:"), "{l}");
        // And the winner is the valid probe, not a failed one.
        assert_eq!(r.best_options.warps, 3);
    }

    #[test]
    fn pipelined_grid_scales_depth_menu_with_the_barrier_file() {
        let hopper = candidate_grid_pipelined(Placement::Store, &GpuArch::hopper());
        let kepler = candidate_grid_pipelined(Placement::Store, &GpuArch::kepler_k20c());
        // 8 warp counts x (iters=1 -> K=1 only, iters=4 -> full menu).
        assert_eq!(hopper.len(), 8 * (1 + 3));
        assert_eq!(kepler.len(), 8 * (1 + 2));
        assert!(hopper.iter().any(|o| o.pipeline_depth == 4));
        assert!(kepler.iter().all(|o| o.pipeline_depth <= 2));
        // Depth never exceeds what the stream can absorb.
        for o in hopper.iter().chain(&kepler) {
            assert!(o.pipeline_depth as u32 <= o.point_iters.max(1));
        }
    }

    #[test]
    fn autotune_probes_the_pipeline_depth_axis() {
        let m = synth::via_text(&synth::SynthConfig {
            name: "atp".into(),
            n_species: 6,
            n_reactions: 8,
            n_qssa: 0,
            n_stiff: 0,
            seed: 4,
        });
        let t = ViscosityTables::build(&m);
        let d = viscosity_dfg(&t, 3);
        let arch = GpuArch::hopper();
        let cands = vec![
            CompileOptions::builder().warps(3).point_iters(4).pipeline_depth(1).build(),
            CompileOptions::builder().warps(3).point_iters(4).pipeline_depth(2).build(),
            CompileOptions::builder().warps(3).point_iters(4).pipeline_depth(4).build(),
        ];
        let r = autotune(&d, &arch, &cands, 256, &|k, pts| {
            let g = GridState::random(GridDims { nx: pts, ny: 1, nz: 1 }, 6, 1);
            launch_arrays(&k.global_arrays, &g)
                .expect("known arrays")
                .iter()
                .map(|s| s.to_vec())
                .collect()
        })
        .unwrap();
        // Every depth compiles and runs on Hopper; the winner is whichever
        // depth the timing model scores best — the axis is genuinely live.
        assert!(r.points.iter().all(|p| p.seconds.is_some()), "{:?}", r.points);
        assert!(r.best_options.pipeline_depth >= 1);
    }

    #[test]
    fn extended_grid_has_finer_streaming_axis() {
        let g = candidate_grid_extended(Placement::Store);
        assert_eq!(g.len(), 24);
        // Guided search at the default K never simulates more than 25%.
        assert!(GUIDED_TOP_K * 4 <= g.len());
    }

    #[test]
    fn guided_simulates_top_k_only_and_matches_exhaustive() {
        let m = synth::via_text(&synth::SynthConfig {
            name: "atg".into(),
            n_species: 6,
            n_reactions: 8,
            n_qssa: 0,
            n_stiff: 0,
            seed: 4,
        });
        let t = ViscosityTables::build(&m);
        let d = viscosity_dfg(&t, 3);
        let arch = GpuArch::kepler_k20c();
        let cands: Vec<CompileOptions> =
            [2usize, 3, 4, 6, 8, 12].iter().map(|&w| CompileOptions::with_warps(w)).collect();
        let inputs = |k: &gpu_sim::isa::Kernel, pts: usize| {
            let g = GridState::random(GridDims { nx: pts, ny: 1, nz: 1 }, 6, 1);
            launch_arrays(&k.global_arrays, &g)
                .expect("known arrays")
                .iter()
                .map(|s| s.to_vec())
                .collect::<Vec<_>>()
        };
        let exhaustive = autotune(&d, &arch, &cands, 256, &inputs).unwrap();
        let guided = autotune_guided(&d, &arch, &cands, 256, 3, &inputs).unwrap();
        // Only K points carry simulated times; every *compiled* point
        // carries a prediction (warps=2 cannot compile for this DFG).
        assert_eq!(guided.points.iter().filter(|p| p.seconds.is_some()).count(), 3);
        for p in &guided.points {
            if !matches!(p.failure, Some(TuneFailure::Compile(_))) {
                assert!(p.predicted_seconds.is_some(), "{:?}", p.options.warps);
            }
        }
        // The guided winner's simulated time is within 2% of exhaustive.
        let best_ex = exhaustive.points.iter().filter_map(|p| p.seconds).fold(f64::MAX, f64::min);
        let best_gd = guided.points.iter().filter_map(|p| p.seconds).fold(f64::MAX, f64::min);
        assert!(best_gd <= best_ex * 1.02, "guided {best_gd} vs exhaustive {best_ex}");
        // And it is deterministic across worker counts.
        let g1 = autotune_guided_with_jobs(&d, &arch, &cands, 256, 3, &inputs, 1).unwrap();
        let g8 = autotune_guided_with_jobs(&d, &arch, &cands, 256, 3, &inputs, 8).unwrap();
        assert_eq!(g1.best_options.warps, g8.best_options.warps);
        let s1: Vec<Option<f64>> = g1.points.iter().map(|p| p.seconds).collect();
        let s8: Vec<Option<f64>> = g8.points.iter().map(|p| p.seconds).collect();
        assert_eq!(s1, s8);
    }

    #[test]
    fn winner_is_identical_across_job_counts() {
        let m = synth::via_text(&synth::SynthConfig {
            name: "atj".into(),
            n_species: 6,
            n_reactions: 8,
            n_qssa: 0,
            n_stiff: 0,
            seed: 4,
        });
        let t = ViscosityTables::build(&m);
        let d = viscosity_dfg(&t, 3);
        let arch = GpuArch::kepler_k20c();
        let cands: Vec<CompileOptions> =
            [2usize, 3, 4, 6].iter().map(|&w| CompileOptions::with_warps(w)).collect();
        let inputs = |k: &gpu_sim::isa::Kernel, pts: usize| {
            let g = GridState::random(GridDims { nx: pts, ny: 1, nz: 1 }, 6, 1);
            launch_arrays(&k.global_arrays, &g)
                .expect("known arrays")
                .iter()
                .map(|s| s.to_vec())
                .collect::<Vec<_>>()
        };
        let serial = autotune_with_jobs(&d, &arch, &cands, 256, &inputs, 1).unwrap();
        let parallel = autotune_with_jobs(&d, &arch, &cands, 256, &inputs, 8).unwrap();
        assert_eq!(serial.best_options.warps, parallel.best_options.warps);
        let s: Vec<Option<f64>> = serial.points.iter().map(|p| p.seconds).collect();
        let p: Vec<Option<f64>> = parallel.points.iter().map(|p| p.seconds).collect();
        assert_eq!(s, p);
    }
}
