//! Brute-force exhaustive autotuning (paper §4).
//!
//! "We used a brute-force exhaustive autotuning script to drive Singe when
//! tuning our kernels. ... the search space was never more than a few
//! hundred points because warp-specialized decisions dealt with very
//! coarse-grained properties such as the number of target warps."
//!
//! Candidates are compiled and scored with the simulator's timing model on
//! a representative grid; the best configuration wins.

use crate::codegen::{compile_dfg, Compiled};
use crate::config::{CompileOptions, Placement};
use crate::dfg::Dfg;
use crate::CResult;
use gpu_sim::arch::GpuArch;
use gpu_sim::launch::{launch, LaunchInputs, LaunchMode};

/// One autotuning result row.
#[derive(Debug, Clone)]
pub struct TunePoint {
    /// The options evaluated.
    pub options: CompileOptions,
    /// Simulated kernel seconds on the probe grid (None = did not compile
    /// or run: resource exhaustion is a legal autotuner outcome).
    pub seconds: Option<f64>,
}

/// Autotuning outcome: every point probed plus the winner.
#[derive(Debug)]
pub struct TuneResult {
    /// All probed points.
    pub points: Vec<TunePoint>,
    /// The winning compile (best simulated time).
    pub best: Compiled,
    /// The winning options.
    pub best_options: CompileOptions,
}

/// Build the default candidate grid: warp counts x point iterations,
/// holding the placement strategy fixed.
pub fn candidate_grid(placement: Placement) -> Vec<CompileOptions> {
    let mut v = Vec::new();
    for &warps in &[2usize, 3, 4, 6, 8, 10, 12, 16] {
        for &iters in &[1u32, 4] {
            v.push(CompileOptions {
                warps,
                point_iters: iters,
                placement,
                ..Default::default()
            });
        }
    }
    v
}

/// Exhaustively evaluate `candidates` for `dfg` on `arch`; the probe grid
/// covers `probe_points` points (rounded up to a whole number of CTAs).
pub fn autotune(
    dfg: &Dfg,
    arch: &GpuArch,
    candidates: &[CompileOptions],
    probe_points: usize,
    inputs_for: &dyn Fn(&gpu_sim::isa::Kernel, usize) -> Vec<Vec<f64>>,
) -> CResult<TuneResult> {
    let mut points = Vec::new();
    let mut best: Option<(f64, Compiled, CompileOptions)> = None;
    for cand in candidates {
        let compiled = match compile_dfg(dfg, cand, arch) {
            Ok(c) => c,
            Err(_) => {
                points.push(TunePoint { options: cand.clone(), seconds: None });
                continue;
            }
        };
        let ppc = compiled.kernel.points_per_cta;
        let grid = probe_points.div_ceil(ppc) * ppc;
        let owned = inputs_for(&compiled.kernel, grid);
        let arrays: Vec<&[f64]> = owned.iter().map(|v| v.as_slice()).collect();
        let sec = match launch(
            &compiled.kernel,
            arch,
            &LaunchInputs { arrays },
            grid,
            LaunchMode::TimingOnly,
        ) {
            Ok(out) => out.report.seconds,
            Err(_) => {
                points.push(TunePoint { options: cand.clone(), seconds: None });
                continue;
            }
        };
        points.push(TunePoint { options: cand.clone(), seconds: Some(sec) });
        if best.as_ref().is_none_or(|(b, _, _)| sec < *b) {
            best = Some((sec, compiled, cand.clone()));
        }
    }
    let (_, best, best_options) = best.ok_or_else(|| {
        crate::CompileError::ResourceExhausted("no autotune candidate compiled".into())
    })?;
    Ok(TuneResult { points, best, best_options })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::launch_arrays;
    use crate::kernels::viscosity::viscosity_dfg;
    use chemkin::reference::tables::ViscosityTables;
    use chemkin::state::{GridDims, GridState};
    use chemkin::synth;

    #[test]
    fn autotune_picks_a_valid_config() {
        let m = synth::via_text(&synth::SynthConfig {
            name: "at".into(),
            n_species: 6,
            n_reactions: 8,
            n_qssa: 0,
            n_stiff: 0,
            seed: 4,
        });
        let t = ViscosityTables::build(&m);
        let d = viscosity_dfg(&t, 3);
        let arch = GpuArch::kepler_k20c();
        let cands: Vec<CompileOptions> = [2usize, 3, 4]
            .iter()
            .map(|&w| CompileOptions::with_warps(w))
            .collect();
        let r = autotune(&d, &arch, &cands, 256, &|k, pts| {
            let g = GridState::random(GridDims { nx: pts, ny: 1, nz: 1 }, 6, 1);
            launch_arrays(&k.global_arrays, &g)
                .expect("known arrays")
                .iter()
                .map(|s| s.to_vec())
                .collect()
        })
        .unwrap();
        assert_eq!(r.points.len(), 3);
        assert!(r.points.iter().any(|p| p.seconds.is_some()));
        assert!(r.best_options.warps >= 2);
    }

    #[test]
    fn candidate_grid_has_coarse_dimensions() {
        let g = candidate_grid(Placement::Store);
        assert_eq!(g.len(), 16);
    }
}
