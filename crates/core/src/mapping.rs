//! Computation and data mapping (paper §4.1).
//!
//! Assigns operations to warps with a greedy algorithm balancing three
//! metrics — FLOP load, per-warp register pressure, and locality — with
//! autotunable weights, then decides where each dataflow value lives
//! (registers of the producing warp vs shared memory).

use crate::config::CompileOptions;
use crate::dfg::{Dfg, OpId};
use crate::expr::VarId;
use crate::{CResult, CompileError};

/// Where a dataflow value lives (§4.1 second mapping step).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarPlace {
    /// Producer warp's registers only (no cross-warp consumers).
    Reg,
    /// Shared memory (communicated between warps); the value may *also*
    /// stay in the producer's registers for its own later uses.
    Shared,
}

/// Result of the mapping stage.
#[derive(Debug, Clone)]
pub struct Mapping {
    /// Warp of each op.
    pub warp_of: Vec<usize>,
    /// Placement of each var.
    pub var_place: Vec<VarPlace>,
    /// Per-warp FLOP totals (diagnostics / balance tests).
    pub warp_flops: Vec<usize>,
}

/// Estimated registers an op's outputs hold live (one double per var).
fn op_reg_cost(dfg: &Dfg, op: OpId) -> usize {
    dfg.ops[op].outputs().len()
}

/// Greedily map operations onto `options.warps` warps.
///
/// Pinned ops (frontend partitioning decisions, §3) are honored first;
/// remaining ops are placed most-expensive-first onto the warp minimizing
/// the weighted cost (paper: "Singe maps operations in order of cost from
/// the most expensive to the least in a way that locally minimizes overall
/// cost").
pub fn map_ops(dfg: &Dfg, options: &CompileOptions) -> CResult<Mapping> {
    let w = options.warps;
    if w == 0 || w > 32 {
        return Err(CompileError::Internal(format!("bad warp count {w}")));
    }
    let n = dfg.ops.len();
    let prod = dfg.producers()?;
    let mut warp_of = vec![usize::MAX; n];
    let mut warp_flops = vec![0usize; w];
    let mut warp_regs = vec![0usize; w];

    for (oi, op) in dfg.ops.iter().enumerate() {
        if let Some(p) = op.pinned_warp {
            if p >= w {
                return Err(CompileError::ResourceExhausted(format!(
                    "op '{}' pinned to warp {p} but only {w} warps targeted",
                    op.name
                )));
            }
            warp_of[oi] = p;
            warp_flops[p] += op.flops();
            warp_regs[p] += op_reg_cost(dfg, oi);
        }
    }

    // Unpinned ops, most expensive first.
    let mut order: Vec<OpId> = (0..n).filter(|&o| warp_of[o] == usize::MAX).collect();
    order.sort_by_key(|&o| std::cmp::Reverse(dfg.ops[o].flops()));

    let consumers = dfg.consumers();
    for oi in order {
        let op = &dfg.ops[oi];
        let flops = op.flops();
        let regs = op_reg_cost(dfg, oi);
        // Locality: warps already hosting producers of our inputs or
        // consumers of our outputs.
        let mut neighbor_warps = vec![0usize; w];
        for v in op.inputs() {
            let p = warp_of[prod[v as usize]];
            if p != usize::MAX {
                neighbor_warps[p] += 1;
            }
        }
        for v in op.outputs() {
            for &c in &consumers[v as usize] {
                let cw = warp_of[c];
                if cw != usize::MAX {
                    neighbor_warps[cw] += 1;
                }
            }
        }
        let total_edges: usize = neighbor_warps.iter().sum();

        let mut best = (f64::INFINITY, 0usize);
        for cand in 0..w {
            let cost = options.w_flops * (warp_flops[cand] + flops) as f64
                + options.w_regs * 64.0 * (warp_regs[cand] + regs) as f64
                + options.w_locality * 64.0 * (total_edges - neighbor_warps[cand]) as f64;
            if cost < best.0 {
                best = (cost, cand);
            }
        }
        let cand = best.1;
        warp_of[oi] = cand;
        warp_flops[cand] += flops;
        warp_regs[cand] += regs;
    }

    // Data placement: cross-warp consumed vars go to shared memory, plus
    // anything the frontend forces there (reduction values, §3.2).
    let mut var_place = vec![VarPlace::Reg; dfg.n_vars as usize];
    for v in 0..dfg.n_vars as usize {
        let pw = warp_of[prod[v]];
        if consumers[v].iter().any(|&c| warp_of[c] != pw) || dfg.force_shared.contains(&(v as u32))
        {
            var_place[v] = VarPlace::Shared;
        }
    }

    Ok(Mapping { warp_of, var_place, warp_flops })
}

impl Mapping {
    /// Vars that must be communicated (placed in shared memory).
    pub fn shared_vars(&self) -> Vec<VarId> {
        self.var_place
            .iter()
            .enumerate()
            .filter(|(_, p)| **p == VarPlace::Shared)
            .map(|(v, _)| v as VarId)
            .collect()
    }

    /// FLOP imbalance: max/mean over warps (1.0 = perfect balance).
    pub fn flop_imbalance(&self) -> f64 {
        let max = *self.warp_flops.iter().max().unwrap_or(&0) as f64;
        let mean =
            self.warp_flops.iter().sum::<usize>() as f64 / self.warp_flops.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfg::test_support::diamond;
    use crate::dfg::Operation;
    use crate::expr::{Expr, Stmt};

    fn many_ops(n: usize, flops_each: usize) -> Dfg {
        // n independent ops each defining one var with a chain of adds.
        let mut ops = Vec::new();
        for i in 0..n {
            let mut e = Expr::Lit(1.0);
            for _ in 0..flops_each {
                e = e.add(Expr::Lit(1.0));
            }
            ops.push(Operation {
                name: format!("op{i}"),
                body: vec![Stmt::DefVar(i as u32, e)],
                n_locals: 0,
                consts: vec![],
                irows: vec![],
                pinned_warp: None,
                phase: 0,
            });
        }
        // A sink op consuming everything, pinned to warp 0.
        ops.push(Operation {
            name: "sink".into(),
            body: vec![Stmt::Store {
                array: 0,
                row: crate::expr::RowRef::Fixed(0),
                value: (0..n as u32).fold(Expr::Lit(0.0), |acc, v| acc.add(Expr::Var(v))),
            }],
            n_locals: 0,
            consts: vec![],
            irows: vec![],
            pinned_warp: Some(0),
            phase: 1,
        });
        Dfg {
            name: "many".into(),
            ops,
            n_vars: n as u32,
            arrays: vec![gpu_sim::isa::ArrayDecl { name: "out".into(), rows: 1, output: true }],
            force_shared: vec![],
        }
    }

    #[test]
    fn balances_flops_across_warps() {
        let d = many_ops(64, 10);
        // Pure load balance (no locality pull toward the pinned sink).
        let opts = CompileOptions { warps: 8, w_locality: 0.0, w_regs: 0.0, ..Default::default() };
        let m = map_ops(&d, &opts).unwrap();
        assert!(m.flop_imbalance() < 1.3, "imbalance {}", m.flop_imbalance());
        // All warps used.
        for w in 0..8 {
            assert!(m.warp_of.contains(&w), "warp {w} unused");
        }
    }

    #[test]
    fn pinned_ops_respected() {
        let d = many_ops(16, 4);
        let m = map_ops(&d, &CompileOptions::with_warps(4)).unwrap();
        assert_eq!(m.warp_of[16], 0); // the sink
    }

    #[test]
    fn pin_out_of_range_rejected() {
        let mut d = many_ops(4, 1);
        d.ops[0].pinned_warp = Some(9);
        assert!(map_ops(&d, &CompileOptions::with_warps(4)).is_err());
    }

    #[test]
    fn cross_warp_vars_go_shared() {
        let d = many_ops(64, 10);
        let m = map_ops(&d, &CompileOptions::with_warps(8)).unwrap();
        // Vars produced on warp != 0 but consumed by the warp-0 sink must
        // be shared.
        let prod = d.producers().unwrap();
        for v in 0..64u32 {
            let pw = m.warp_of[prod[v as usize]];
            if pw != 0 {
                assert_eq!(m.var_place[v as usize], VarPlace::Shared);
            }
        }
    }

    #[test]
    fn single_warp_keeps_everything_in_regs() {
        let d = diamond();
        let m = map_ops(&d, &CompileOptions::with_warps(1)).unwrap();
        assert!(m.var_place.iter().all(|p| *p == VarPlace::Reg));
    }

    #[test]
    fn locality_weight_pulls_consumers_together() {
        // With a huge locality weight and zero flop weight, everything
        // lands on the sink's warp.
        let d = many_ops(8, 2);
        let opts = CompileOptions {
            warps: 4,
            w_flops: 0.0,
            w_regs: 0.0,
            w_locality: 10.0,
            ..Default::default()
        };
        let m = map_ops(&d, &opts).unwrap();
        for &w in &m.warp_of {
            assert_eq!(w, 0);
        }
    }
}
