//! Chemistry kernel frontend (paper §3.4, Figures 6–7).
//!
//! Four phases over the flattened [`ChemistrySpec`]:
//!
//! 1. **Rates** — forward/reverse rate constants per reaction. Reactions
//!    the QSSA phase needs are assigned to warps *first* (scheduled in an
//!    earlier phase); the remaining reactions execute on the non-QSSA
//!    warps while the QSSA warps proceed — the Figure 6 overlap. Rate
//!    models produce distinct code shapes (Arrhenius / Lindemann / Troe /
//!    Landau-Teller; explicit vs equilibrium reverse), which the §5.1
//!    overlay merges per shape exactly as Listing 1 merges Landau-Teller
//!    and Lindemann rates.
//! 2. **QSSA** — algebraic reconstruction of quasi-steady concentrations on
//!    a dedicated subset of warps, walking the dependence DAG (Figure 7);
//!    rate values cross warps through the recycled shared buffer
//!    (`Placement::Buffer`), whose pass barriers are the paper's
//!    "exchanged in passes" through shared memory.
//! 3. **Stiffness** — per-stiff-species corrections combining a
//!    global-memory diffusion load and the molar fraction, both addressed
//!    through warp-indexing constants (Listing 4).
//! 4. **Output** — rates of progress and stoichiometric accumulation into
//!    per-species `wdot`, scaled by the stiffness factors.

use crate::dfg::{Dfg, Operation};
use crate::expr::{Expr, RowRef, Stmt, VarId};
use chemkin::reaction::RateModel;
use chemkin::reference::tables::{ChemistrySpec, ReverseKind, SpeciesRef, R_ERG, T_MID};
use chemkin::{P_ATM, R_CAL};
use gpu_sim::isa::ArrayDecl;

/// Array index: temperature (input, 1 row).
pub const ARR_TEMP: u16 = 0;
/// Array index: pressure (input, 1 row).
pub const ARR_PRES: u16 = 1;
/// Array index: molar fractions (input, N rows).
pub const ARR_XFRAC: u16 = 2;
/// Array index: per-species diffusion rates (input, N rows — stiffness).
pub const ARR_DIFF: u16 = 3;
/// Array index: per-species rate-of-change output (N rows).
pub const ARR_OUT: u16 = 4;

/// How many warps are siphoned off for the QSSA computation (Figure 6).
pub fn qssa_warp_count(warps: usize, n_qssa: usize) -> usize {
    if n_qssa == 0 || warps < 2 {
        0
    } else {
        (warps / 4).max(1)
    }
}

/// `T` as an expression (global load).
fn temp() -> Expr {
    Expr::Input { array: ARR_TEMP, row: RowRef::Fixed(0) }
}

/// `conc^nu` with the same small-integer fast paths as the reference's
/// `stoich_pow`, so compiled kernels and the CPU reference agree exactly.
fn stoich_pow_expr(conc: Expr, nu: f64) -> Expr {
    if nu == 1.0 {
        conc
    } else if nu == 2.0 {
        conc.clone().mul(conc)
    } else if nu == 3.0 {
        conc.clone().mul(conc.clone()).mul(conc)
    } else {
        conc.pow(Expr::Lit(nu))
    }
}

/// Build the chemistry dataflow graph for `warps` warps.
pub fn chemistry_dfg(spec: &ChemistrySpec, warps: usize) -> Dfg {
    let n = spec.n_trans;
    let nr = spec.reactions.len();
    let nq = spec.n_qssa;
    let w = warps;
    let wq = qssa_warp_count(w, nq);
    let non_qssa_warps: Vec<usize> = (0..w - wq).collect();
    let qssa_warps: Vec<usize> = (w - wq..w).collect();

    let mut next_var: VarId = 0;
    let alloc = |next_var: &mut VarId, k: usize| -> usize {
        let v = *next_var;
        *next_var += k as VarId;
        v as usize
    };
    // Prep vars.
    let v_lnt = alloc(&mut next_var, 1);
    let v_invt = alloc(&mut next_var, 1);
    let v_ctot = alloc(&mut next_var, 1);
    let v_mbase = alloc(&mut next_var, 1);
    let v_conc = alloc(&mut next_var, n);
    let v_kf = alloc(&mut next_var, nr);
    let v_kr = alloc(&mut next_var, nr); // defined only when reversible
    let v_m = alloc(&mut next_var, nr); // defined only for three-body q ops
    let v_qconc = alloc(&mut next_var, nq);
    let v_stiff = alloc(&mut next_var, n); // defined only for stiff species
    let v_q = alloc(&mut next_var, nr);

    let mut ops: Vec<Operation> = Vec::new();
    // Track which optional vars actually get defined so `n_vars` can be
    // compacted at the end.
    let mut defined: Vec<bool> = Vec::new();

    // --- Phase 0: prep (lnT, 1/T, total concentration, base third body). ---
    {
        let mut sumx = Expr::Lit(0.0);
        for i in 0..n {
            sumx = sumx.add(Expr::Input { array: ARR_XFRAC, row: RowRef::Fixed(i as u32) });
        }
        ops.push(Operation {
            name: "prep".into(),
            body: vec![
                Stmt::Local(0, temp()),
                Stmt::DefVar(v_lnt as VarId, Expr::Local(0).log()),
                Stmt::DefVar(v_invt as VarId, Expr::Lit(1.0).div(Expr::Local(0))),
                Stmt::DefVar(
                    v_ctot as VarId,
                    Expr::Input { array: ARR_PRES, row: RowRef::Fixed(0) }
                        .mul(Expr::Var(v_invt as VarId))
                        .mul(Expr::Lit(1.0 / R_ERG)),
                ),
                Stmt::DefVar(v_mbase as VarId, sumx.mul(Expr::Var(v_ctot as VarId))),
            ],
            n_locals: 1,
            consts: vec![],
            irows: vec![],
            pinned_warp: Some(0),
            phase: 0,
        });
    }

    // --- Phase 0: per-species concentrations. ---
    for i in 0..n {
        ops.push(Operation {
            name: format!("conc[{i}]"),
            body: vec![Stmt::DefVar(
                (v_conc + i) as VarId,
                Expr::Input { array: ARR_XFRAC, row: RowRef::Slot(0) }
                    .mul(Expr::Var(v_ctot as VarId)),
            )],
            n_locals: 0,
            consts: vec![],
            irows: vec![i as u32],
            pinned_warp: Some(i % w),
            phase: 0,
        });
    }

    // --- Phases 1-2: rate ops. QSSA-needed reactions first (phase 1,
    // spread over all warps); the rest on non-QSSA warps (phase 2). ---
    let qssa_rx = spec.qssa_reaction_indices();
    let mut rr_counter = [0usize; 2];
    let mut rate_pin = vec![0usize; nr];
    for (ri, r) in spec.reactions.iter().enumerate() {
        let needed_by_qssa = qssa_rx.contains(&ri);
        let (phase, pin) = if needed_by_qssa {
            let p = rr_counter[0] % w;
            rr_counter[0] += 1;
            (1, p)
        } else {
            let p = non_qssa_warps[rr_counter[1] % non_qssa_warps.len()];
            rr_counter[1] += 1;
            (2, p)
        };
        rate_pin[ri] = pin;

        let mut consts: Vec<f64> = Vec::new();
        let mut body: Vec<Stmt> = Vec::new();
        let mut n_locals: u16 = 0;
        let local = |body: &mut Vec<Stmt>, n_locals: &mut u16, e: Expr| -> Expr {
            let l = *n_locals;
            *n_locals += 1;
            body.push(Stmt::Local(l, e));
            Expr::Local(l)
        };
        fn c(consts: &mut Vec<f64>, v: f64) -> Expr {
            consts.push(v);
            Expr::Const((consts.len() - 1) as u16)
        }

        // Effective third-body concentration.
        let m_expr = r.third_body.as_ref().map(|effs| {
            let mut m = Expr::Var(v_mbase as VarId);
            for &(s, e) in effs {
                m = c(&mut consts, e - 1.0)
                    .mul(Expr::Var((v_conc + s) as VarId))
                    .add(m);
            }
            m
        });

        // ln k = lnA + beta lnT - (E/R)/T, shared by every model's limits.
        fn lnk(
            consts: &mut Vec<f64>,
            a: chemkin::reaction::Arrhenius,
            v_lnt: usize,
            v_invt: usize,
        ) -> Expr {
            let ca = c(consts, a.a.ln());
            let cb = c(consts, a.beta);
            let ce = c(consts, a.e_act / R_CAL);
            cb.fma(Expr::Var(v_lnt as VarId), ca)
                .sub(ce.mul(Expr::Var(v_invt as VarId)))
        }

        let kf_expr = match &r.rate {
            RateModel::Arrhenius(a) => lnk(&mut consts, *a, v_lnt, v_invt).exp(),
            RateModel::Lindemann { high, low } => {
                let kinf =
                    local(&mut body, &mut n_locals, lnk(&mut consts, *high, v_lnt, v_invt).exp());
                let klow = lnk(&mut consts, *low, v_lnt, v_invt).exp();
                let m = local(&mut body, &mut n_locals, m_expr.clone().expect("falloff has m"));
                let pr = local(&mut body, &mut n_locals, klow.mul(m).div(kinf.clone()));
                kinf.mul(pr.clone()).div(Expr::Lit(1.0).add(pr))
            }
            RateModel::Troe { high, low, troe } => {
                let kinf =
                    local(&mut body, &mut n_locals, lnk(&mut consts, *high, v_lnt, v_invt).exp());
                let klow = lnk(&mut consts, *low, v_lnt, v_invt).exp();
                let m = local(&mut body, &mut n_locals, m_expr.clone().expect("falloff has m"));
                let pr = local(&mut body, &mut n_locals, klow.mul(m).div(kinf.clone()));
                // F_cent = (1-A) e^{-T/T3} + A e^{-T/T1} [+ e^{-T2/T}],
                // clamped away from zero like the reference.
                let t = local(&mut body, &mut n_locals, temp());
                let c1 = c(&mut consts, 1.0 - troe.a);
                let c3 = c(&mut consts, -1.0 / troe.t3);
                let ca = c(&mut consts, troe.a);
                let ct1 = c(&mut consts, -1.0 / troe.t1);
                let mut fc = c1
                    .mul(t.clone().mul(c3).exp())
                    .add(ca.mul(t.clone().mul(ct1).exp()));
                if let Some(t2) = troe.t2 {
                    let ct2 = c(&mut consts, -t2);
                    fc = fc.add(ct2.mul(Expr::Var(v_invt as VarId)).exp());
                }
                let lfc =
                    local(&mut body, &mut n_locals, fc.max(Expr::Lit(1.0e-30)).log10());
                // Listing 1's Troe sequence.
                let flogpr = local(
                    &mut body,
                    &mut n_locals,
                    pr.clone()
                        .log10()
                        .sub(Expr::Lit(0.4))
                        .sub(Expr::Lit(0.67).mul(lfc.clone())),
                );
                let fdenom = Expr::Lit(0.75)
                    .sub(Expr::Lit(1.27).mul(lfc.clone()))
                    .sub(Expr::Lit(0.14).mul(flogpr.clone()));
                let fquan0 = local(&mut body, &mut n_locals, flogpr.div(fdenom));
                let fquan = lfc.div(Expr::Lit(1.0).add(fquan0.clone().mul(fquan0)));
                let full = kinf
                    .mul(pr.clone())
                    .div(Expr::Lit(1.0).add(pr.clone()))
                    .mul(fquan.mul(Expr::Lit(std::f64::consts::LN_10)).exp());
                // pr <= 0 -> rate 0 (the reference's guard).
                pr.select_gt(Expr::Lit(0.0), full, Expr::Lit(0.0))
            }
            RateModel::LandauTeller { arrhenius, b, c: lc } => {
                let t13i = local(&mut body, &mut n_locals, Expr::Var(v_invt as VarId).cbrt());
                let cb = c(&mut consts, *b);
                let cc = c(&mut consts, *lc);
                let extra = cb.mul(t13i.clone()).add(cc.mul(t13i.clone().mul(t13i)));
                lnk(&mut consts, *arrhenius, v_lnt, v_invt).add(extra).exp()
            }
        };
        let kf = local(&mut body, &mut n_locals, kf_expr);
        body.push(Stmt::DefVar((v_kf + ri) as VarId, kf.clone()));

        match &r.reverse {
            ReverseKind::None => {}
            ReverseKind::Explicit(a) => {
                let kr = lnk(&mut consts, *a, v_lnt, v_invt).exp();
                body.push(Stmt::DefVar((v_kr + ri) as VarId, kr));
            }
            ReverseKind::Equilibrium => {
                // dG/(RT) with the global 1000 K range switch, then
                // k_r = k_f / exp(-dG + sum_nu ln(P0/(R'T))).
                let t = local(&mut body, &mut n_locals, temp());
                let mut dgs: Vec<Expr> = Vec::with_capacity(2);
                for range in 0..2 {
                    let g = &r.gibbs[range];
                    let c0 = c(&mut consts, g[0]);
                    let c1 = c(&mut consts, g[1]);
                    let c2 = c(&mut consts, g[2]);
                    let c3 = c(&mut consts, g[3]);
                    let c4 = c(&mut consts, g[4]);
                    let c5 = c(&mut consts, g[5]);
                    let c6 = c(&mut consts, g[6]);
                    let poly = c4
                        .fma(t.clone(), c3)
                        .fma(t.clone(), c2)
                        .fma(t.clone(), c1)
                        .mul(t.clone());
                    dgs.push(
                        c0.mul(Expr::Lit(1.0).sub(Expr::Var(v_lnt as VarId)))
                            .add(poly)
                            .add(c5.mul(Expr::Var(v_invt as VarId)))
                            .add(c6),
                    );
                }
                let dg_high = dgs.pop().unwrap();
                let dg_low = dgs.pop().unwrap();
                let dgv = local(
                    &mut body,
                    &mut n_locals,
                    Expr::Lit(T_MID).select_gt(t, dg_low, dg_high),
                );
                let csum = c(&mut consts, r.sum_nu);
                let ln_kc = dgv.neg().add(
                    csum.mul(Expr::Lit((P_ATM / R_ERG).ln()).sub(Expr::Var(v_lnt as VarId))),
                );
                body.push(Stmt::DefVar((v_kr + ri) as VarId, kf.clone().div(ln_kc.exp())));
            }
        }

        // Three-body (non-falloff) reactions also export [M] for the q op.
        if r.third_body.is_some() && !r.falloff {
            body.push(Stmt::DefVar((v_m + ri) as VarId, m_expr.expect("three-body has m")));
        }

        ops.push(Operation {
            name: format!("rate[{ri}]"),
            body,
            n_locals,
            consts,
            irows: vec![],
            pinned_warp: Some(pin),
            phase,
        });
    }

    // --- Phase 3: QSSA reconstruction on the siphoned warps (Figure 7). ---
    // A QSSA concentration referenced before its own order contributes
    // zero, exactly like the reference implementation.
    let conc_of = |s: &SpeciesRef, current_order: usize| -> Expr {
        match s {
            SpeciesRef::Transported(i) => Expr::Var((v_conc + i) as VarId),
            SpeciesRef::Qssa(qi) => {
                if *qi < current_order {
                    Expr::Var((v_qconc + qi) as VarId)
                } else {
                    Expr::Lit(0.0)
                }
            }
        }
    };
    for q in &spec.qssa {
        let qi = q.order;
        let mut num = Expr::Lit(0.0);
        for &(ri, coeff) in &q.producers {
            let mut term = Expr::Lit(coeff).mul(Expr::Var((v_kf + ri) as VarId));
            for (s, nu) in &spec.reactions[ri].reactants {
                term = term.mul(stoich_pow_expr(conc_of(s, qi), *nu));
            }
            num = num.add(term);
        }
        let mut den = Expr::Lit(0.0);
        for &(ri, coeff) in &q.consumers {
            let mut term = Expr::Lit(coeff).mul(Expr::Var((v_kf + ri) as VarId));
            for (s, nu) in &spec.reactions[ri].reactants {
                if *s == SpeciesRef::Qssa(qi) {
                    continue;
                }
                term = term.mul(stoich_pow_expr(conc_of(s, qi), *nu));
            }
            den = den.add(term);
        }
        ops.push(Operation {
            name: format!("qssa[{qi}]"),
            body: vec![Stmt::DefVar(
                (v_qconc + qi) as VarId,
                num.div(den.add(Expr::Lit(1.0))),
            )],
            n_locals: 0,
            consts: vec![],
            irows: vec![],
            pinned_warp: Some(qssa_warps[qi % wq.max(1)]),
            phase: 3,
        });
    }

    // --- Phase 4: stiffness corrections (Listing 4 warp indexing). ---
    for st in &spec.stiff {
        let i = st.trans_index;
        let d = Expr::Input { array: ARR_DIFF, row: RowRef::Slot(0) };
        let x = Expr::Input { array: ARR_XFRAC, row: RowRef::Slot(1) };
        // f = 1 / (1 + tau (d + x v)).
        let inner = x.mul(Expr::Const(1)).add(d);
        ops.push(Operation {
            name: format!("stiff[{i}]"),
            body: vec![Stmt::DefVar(
                (v_stiff + i) as VarId,
                Expr::Lit(1.0).div(Expr::Const(0).fma(inner, Expr::Lit(1.0))),
            )],
            n_locals: 0,
            consts: vec![st.tau, st.v],
            irows: vec![i as u32, i as u32],
            pinned_warp: Some(i % w),
            phase: 4,
        });
    }

    // --- Phase 5: rates of progress. ---
    let conc_all = |s: &SpeciesRef| -> Expr {
        match s {
            SpeciesRef::Transported(i) => Expr::Var((v_conc + i) as VarId),
            SpeciesRef::Qssa(qi) => Expr::Var((v_qconc + qi) as VarId),
        }
    };
    for (ri, r) in spec.reactions.iter().enumerate() {
        let mut qf = Expr::Var((v_kf + ri) as VarId);
        for (s, nu) in &r.reactants {
            qf = qf.mul(stoich_pow_expr(conc_all(s), *nu));
        }
        let mut q = qf;
        if !matches!(r.reverse, ReverseKind::None) {
            let mut qr = Expr::Var((v_kr + ri) as VarId);
            for (s, nu) in &r.products {
                qr = qr.mul(stoich_pow_expr(conc_all(s), *nu));
            }
            q = q.sub(qr);
        }
        if r.third_body.is_some() && !r.falloff {
            q = q.mul(Expr::Var((v_m + ri) as VarId));
        }
        // Same warp as the rate op: rate constants stay in registers (the
        // §3.4 register-resident working set).
        ops.push(Operation {
            name: format!("q[{ri}]"),
            body: vec![Stmt::DefVar((v_q + ri) as VarId, q)],
            n_locals: 0,
            consts: vec![],
            irows: vec![],
            pinned_warp: Some(rate_pin[ri]),
            phase: 5,
        });
    }

    // --- Phase 6: stoichiometric accumulation + stiffness + store. ---
    for i in 0..n {
        let mut sum = Expr::Lit(0.0);
        for (ri, r) in spec.reactions.iter().enumerate() {
            let mut nu_net = 0.0;
            for (s, nu) in &r.products {
                if *s == SpeciesRef::Transported(i) {
                    nu_net += nu;
                }
            }
            for (s, nu) in &r.reactants {
                if *s == SpeciesRef::Transported(i) {
                    nu_net -= nu;
                }
            }
            if nu_net != 0.0 {
                sum = Expr::Lit(nu_net).fma(Expr::Var((v_q + ri) as VarId), sum);
            }
        }
        let is_stiff = spec.stiff.iter().any(|s| s.trans_index == i);
        let value = if is_stiff {
            sum.mul(Expr::Var((v_stiff + i) as VarId))
        } else {
            sum
        };
        ops.push(Operation {
            name: format!("wdot[{i}]"),
            body: vec![Stmt::Store { array: ARR_OUT, row: RowRef::Slot(0), value }],
            n_locals: 0,
            consts: vec![],
            irows: vec![i as u32],
            pinned_warp: Some(i % w),
            phase: 6,
        });
    }

    // Compact var ids: drop never-defined optional vars (kr of irreversible
    // reactions, m of non-three-body reactions, stiff of non-stiff species).
    defined.resize(next_var as usize, false);
    for op in &ops {
        for v in op.outputs() {
            defined[v as usize] = true;
        }
    }
    let mut remap: Vec<VarId> = vec![0; next_var as usize];
    let mut compact: VarId = 0;
    for (v, d) in defined.iter().enumerate() {
        if *d {
            remap[v] = compact;
            compact += 1;
        }
    }
    for op in &mut ops {
        for s in &mut op.body {
            remap_stmt(s, &remap);
        }
    }

    Dfg {
        name: "chemistry".into(),
        ops,
        n_vars: compact,
        arrays: vec![
            ArrayDecl { name: "temperature".into(), rows: 1, output: false },
            ArrayDecl { name: "pressure".into(), rows: 1, output: false },
            ArrayDecl { name: "mole_frac".into(), rows: n, output: false },
            ArrayDecl { name: "diffusion".into(), rows: n, output: false },
            ArrayDecl { name: "wdot".into(), rows: n, output: true },
        ],
        force_shared: vec![],
    }
}

fn remap_stmt(s: &mut Stmt, remap: &[VarId]) {
    fn remap_expr(e: &mut Expr, remap: &[VarId]) {
        match e {
            Expr::Var(v) => *v = remap[*v as usize],
            Expr::Un(_, a) => remap_expr(a, remap),
            Expr::Bin(_, a, b) => {
                remap_expr(a, remap);
                remap_expr(b, remap);
            }
            Expr::Tri(_, a, b, c) => {
                remap_expr(a, remap);
                remap_expr(b, remap);
                remap_expr(c, remap);
            }
            _ => {}
        }
    }
    match s {
        Stmt::Local(_, e) | Stmt::Store { value: e, .. } => remap_expr(e, remap),
        Stmt::DefVar(v, e) => {
            *v = remap[*v as usize];
            remap_expr(e, remap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{Compiler, Variant};
    use crate::config::{CompileOptions, Placement};
    use crate::kernels::launch_arrays;
    use chemkin::reference::reference_chemistry;
    use chemkin::state::{GridDims, GridState};
    use chemkin::synth;
    use gpu_sim::arch::GpuArch;
    use gpu_sim::launch::{launch, LaunchInputs, LaunchMode};

    fn spec(n_species: usize, n_reactions: usize, n_qssa: usize, n_stiff: usize) -> ChemistrySpec {
        let m = synth::via_text(&synth::SynthConfig {
            name: "ctest".into(),
            n_species,
            n_reactions,
            n_qssa,
            n_stiff,
            seed: 77,
        });
        ChemistrySpec::build(&m)
    }

    fn check(kernel: &gpu_sim::isa::Kernel, s: &ChemistrySpec, arch: &GpuArch) {
        let points = kernel.points_per_cta * 2;
        let g = GridState::random(GridDims { nx: points, ny: 1, nz: 1 }, s.n_trans, 31);
        let expect = reference_chemistry(s, &g);
        let arrays = launch_arrays(&kernel.global_arrays, &g).expect("known arrays");
        let out = launch(kernel, arch, &LaunchInputs { arrays }, points, LaunchMode::Full).unwrap();
        // wdot values span many orders of magnitude and involve large
        // cancellations; compare with a relative tolerance plus a floor
        // scaled to the biggest output magnitude.
        let scale = expect.iter().fold(0.0f64, |a, v| a.max(v.abs())).max(1e-300);
        for sp in 0..s.n_trans {
            for p in 0..points {
                let got = out.outputs[ARR_OUT as usize][sp * points + p];
                let want = expect[sp * points + p];
                let tol = 1e-9 * (got.abs() + want.abs()) + 1e-9 * scale;
                assert!(
                    (got - want).abs() <= tol,
                    "species {sp} point {p}: got {got:e}, want {want:e}"
                );
            }
        }
    }

    #[test]
    fn baseline_matches_reference() {
        let s = spec(8, 14, 2, 2);
        let d = chemistry_dfg(&s, 4);
        let c =
            Compiler::new(&GpuArch::kepler_k20c())
            .options(CompileOptions::with_warps(2))
            .compile(&d, Variant::Baseline)
            .unwrap();
        check(&c.kernel, &s, &GpuArch::kepler_k20c());
    }

    #[test]
    fn warp_specialized_matches_reference_kepler() {
        let s = spec(8, 14, 2, 2);
        let d = chemistry_dfg(&s, 4);
        let mut opts = CompileOptions::with_warps(4);
        opts.placement = Placement::Buffer(96);
        opts.point_iters = 2;
        let c = Compiler::new(&GpuArch::kepler_k20c()).options(opts).compile(&d, Variant::WarpSpecialized).unwrap();
        check(&c.kernel, &s, &GpuArch::kepler_k20c());
    }

    #[test]
    fn warp_specialized_matches_reference_fermi() {
        let s = spec(6, 10, 2, 1);
        let d = chemistry_dfg(&s, 3);
        let mut opts = CompileOptions::with_warps(3);
        opts.placement = Placement::Buffer(96);
        let c = Compiler::new(&GpuArch::fermi_c2070()).options(opts).compile(&d, Variant::WarpSpecialized).unwrap();
        check(&c.kernel, &s, &GpuArch::fermi_c2070());
    }

    #[test]
    fn qssa_warps_are_siphoned() {
        assert_eq!(qssa_warp_count(8, 4), 2);
        assert_eq!(qssa_warp_count(8, 0), 0);
        assert_eq!(qssa_warp_count(2, 3), 1);
        let s = spec(8, 14, 2, 2);
        let d = chemistry_dfg(&s, 4);
        // QSSA ops pinned to the last warp(s).
        for op in d.ops.iter().filter(|o| o.name.starts_with("qssa")) {
            assert!(op.pinned_warp.unwrap() >= 3, "{:?}", op.pinned_warp);
        }
    }

    #[test]
    fn stiffness_uses_warp_indexed_rows() {
        let s = spec(8, 14, 2, 3);
        let d = chemistry_dfg(&s, 4);
        let stiff_ops: Vec<_> = d.ops.iter().filter(|o| o.name.starts_with("stiff")).collect();
        assert_eq!(stiff_ops.len(), 3);
        for op in stiff_ops {
            assert_eq!(op.irows.len(), 2, "diffusion + mole-frac rows (Listing 4)");
        }
    }

    #[test]
    fn rate_constant_counts_plausible() {
        // Paper §3.4: 6-15 double constants per reaction for the rate
        // models; our folded equilibrium constants add up to 15 more.
        let s = spec(10, 30, 0, 0);
        let d = chemistry_dfg(&s, 4);
        for op in d.ops.iter().filter(|o| o.name.starts_with("rate")) {
            assert!(op.consts.len() >= 3, "{}: {}", op.name, op.consts.len());
            assert!(op.consts.len() <= 33, "{}: {}", op.name, op.consts.len());
        }
    }
}
