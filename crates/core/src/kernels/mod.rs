//! Kernel frontends: dataflow-graph construction for the three combustion
//! kernels the paper studies (§3), plus shared array conventions.
//!
//! Each frontend builds the §4 stage-1 output — a dataflow graph of
//! operations with per-instance constant tables — applying the paper's
//! domain-specific partitioning:
//!
//! * [`viscosity`] — per-species partitioning with a shared-memory working
//!   set and a warp-0 reduction (§3.2);
//! * [`diffusion`] — the Figure 5 symmetric-matrix column scheme with
//!   register column-partials, shared row-partials updated in
//!   barrier-synchronized rotation rounds, and a hybrid Mixed placement
//!   (§3.3);
//! * [`chemistry`] — the four-phase reaction/QSSA/stiffness/output pipeline
//!   with QSSA warps consuming rates through a recycled shared buffer
//!   (§3.4, Figures 6–7).

pub mod chemistry;
pub mod diffusion;
pub mod viscosity;

use crate::{CResult, CompileError};
use chemkin::state::GridState;

/// Build the flat SoA input slices a kernel launch expects, given a grid
/// state and the kernel's array declarations. Outputs get empty slices.
///
/// The convention: array names declared by the frontends are looked up to
/// select the matching `GridState` field; an undeclared name is a
/// [`CompileError::UnknownArray`].
pub fn launch_arrays<'a>(
    kernel_arrays: &[gpu_sim::isa::ArrayDecl],
    grid: &'a GridState,
) -> CResult<Vec<&'a [f64]>> {
    kernel_arrays
        .iter()
        .map(|decl| -> CResult<&'a [f64]> {
            if decl.output {
                return Ok(&[]);
            }
            match decl.name.as_str() {
                "temperature" => Ok(&grid.temperature),
                "pressure" => Ok(&grid.pressure),
                "mole_frac" => Ok(&grid.mole_frac),
                "diffusion" => Ok(&grid.diffusion),
                other => Err(CompileError::UnknownArray(format!(
                    "kernel declares input array '{other}' but the grid state has no such field"
                ))),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chemkin::state::GridDims;
    use gpu_sim::isa::ArrayDecl;

    #[test]
    fn arrays_resolve_by_name() {
        let g = GridState::random(GridDims::cube(2), 3, 1);
        let decls = vec![
            ArrayDecl { name: "temperature".into(), rows: 1, output: false },
            ArrayDecl { name: "mole_frac".into(), rows: 3, output: false },
            ArrayDecl { name: "out".into(), rows: 1, output: true },
        ];
        let arrays = launch_arrays(&decls, &g).expect("known arrays");
        assert_eq!(arrays[0].len(), 8);
        assert_eq!(arrays[1].len(), 24);
        assert!(arrays[2].is_empty());
    }

    #[test]
    fn unknown_array_is_a_typed_error() {
        let g = GridState::random(GridDims::cube(2), 3, 1);
        let decls =
            vec![ArrayDecl { name: "vorticity".into(), rows: 1, output: false }];
        let err = launch_arrays(&decls, &g).unwrap_err();
        assert!(matches!(err, crate::CompileError::UnknownArray(_)), "{err}");
    }
}
