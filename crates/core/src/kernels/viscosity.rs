//! Viscosity kernel frontend (paper §3.2).
//!
//! The computation per grid point:
//!
//! ```text
//! lvis_i = eta_i0 + eta_i1 T + eta_i2 T^2 + eta_i3 T^3       (log viscosity)
//! nu = sqrt(8) * sum_k [ x_k exp(lvis_k) / inner_k ]
//! inner_k = x_k * PHI_SELF
//!         + sum_{j != k} x_j * (1 + exp(0.5 (lvis_k - lvis_j) + lnA_kj))^2 * B_kj
//! ```
//!
//! The pair term is evaluated **in logarithmic space** — the paper's
//! optimization replacing a sqrt and a divide by one exponential — which
//! yields exactly the per-pair cost the paper reports: two double constants
//! loaded (`lnA_kj`, `B_kj`), 2 adds, 2 multiplies, and an FMA/exp chain.
//!
//! Dataflow structure (three phases):
//!
//! 1. one *species op* per species: loads `x_i`, computes `lvis_i`; both go
//!    to shared memory (the §3.2 "molar fractions and per-species
//!    viscosities are moved into shared memory");
//! 2. one *term op* per species `k`: the full inner interaction sum — all
//!    term ops share one skeleton, so the §5 overlaying emits a single code
//!    instance with per-warp constant arrays;
//! 3. one *reduction op* pinned to warp 0 sums the terms and writes the
//!    output (§3.2: "the threads in warp 0 perform the write").

use crate::dfg::{Dfg, Operation};
use crate::expr::{Expr, RowRef, Stmt, VarId};
use chemkin::reference::tables::{ViscosityTables, PHI_SELF};
use gpu_sim::isa::ArrayDecl;

/// Array index: temperature (input, 1 row).
pub const ARR_TEMP: u16 = 0;
/// Array index: molar fractions (input, N rows).
pub const ARR_XFRAC: u16 = 1;
/// Array index: viscosity output (1 row).
pub const ARR_OUT: u16 = 2;

/// Var id helpers.
fn v_x(i: usize) -> VarId {
    i as VarId
}
fn v_lvis(n: usize, i: usize) -> VarId {
    (n + i) as VarId
}
fn v_term(n: usize, k: usize) -> VarId {
    (2 * n + k) as VarId
}

/// Build the viscosity dataflow graph from the kernel tables for `warps`
/// warps. Species computations are partitioned round-robin across warps —
/// the §3.2 partitioning ("the outer sum over the set of chemical species
/// is broken into individual computations each of which is mapped to a
/// different warp"); keeping the assignment symmetric also maximizes the
/// §5.1 overlay (isomorphic per-warp streams resolve to identical code).
pub fn viscosity_dfg(t: &ViscosityTables, warps: usize) -> Dfg {
    let n = t.n;
    let mut ops = Vec::with_capacity(2 * n + 1);

    // Phase 0: species ops (x_i load + log-viscosity polynomial).
    for i in 0..n {
        let temp = Expr::Input { array: ARR_TEMP, row: RowRef::Fixed(0) };
        // Horner in FMA form: ((e3*T + e2)*T + e1)*T + e0.
        let poly = Expr::Const(3)
            .fma(Expr::Local(0), Expr::Const(2))
            .fma(Expr::Local(0), Expr::Const(1))
            .fma(Expr::Local(0), Expr::Const(0));
        ops.push(Operation {
            name: format!("vis[{i}]"),
            body: vec![
                Stmt::Local(0, temp),
                Stmt::DefVar(v_x(i), Expr::Input { array: ARR_XFRAC, row: RowRef::Slot(0) }),
                Stmt::DefVar(v_lvis(n, i), poly),
            ],
            n_locals: 1,
            consts: t.eta[i].to_vec(),
            irows: vec![i as u32],
            pinned_warp: Some(i % warps),
            phase: 0,
        });
    }

    // Phase 1: term ops — the pairwise interaction sum for species k.
    for k in 0..n {
        let mut consts = Vec::with_capacity(2 * (n - 1));
        // inner = x_k * PHI_SELF + sum_j terms.
        let mut inner = Expr::Var(v_x(k)).mul(Expr::Lit(PHI_SELF));
        let mut cidx = 0u16;
        for j in 0..n {
            if j == k {
                continue;
            }
            // lnA_kj = ln((m_j/m_k)^(1/4)); B_kj from the tables.
            consts.push(t.pair_a[k * n + j].ln());
            consts.push(t.pair_b[k * n + j]);
            // e = exp((lvis_k - lvis_j) * 0.5 + lnA).
            let e = Expr::Local(0)
                .sub(Expr::Var(v_lvis(n, j)))
                .fma(Expr::Lit(0.5), Expr::Const(cidx))
                .exp();
            // s = 1 + e; contribution = x_j * s^2 * B.
            let s = Expr::Lit(1.0).add(e);
            let contrib = s.clone().mul(s).mul(Expr::Const(cidx + 1)).mul(Expr::Var(v_x(j)));
            inner = inner.add(contrib);
            cidx += 2;
        }
        // term_k = x_k * exp(lvis_k) / inner.
        let numer = Expr::Var(v_x(k)).mul(Expr::Local(0).exp());
        ops.push(Operation {
            name: format!("term[{k}]"),
            body: vec![
                Stmt::Local(0, Expr::Var(v_lvis(n, k))),
                Stmt::Local(1, inner),
                Stmt::DefVar(v_term(n, k), numer.div(Expr::Local(1))),
            ],
            n_locals: 2,
            consts,
            irows: vec![],
            pinned_warp: Some(k % warps),
            phase: 1,
        });
    }

    // Phase 2: reduction + output on warp 0.
    let mut sum = Expr::Var(v_term(n, 0));
    for k in 1..n {
        sum = sum.add(Expr::Var(v_term(n, k)));
    }
    ops.push(Operation {
        name: "reduce".into(),
        body: vec![Stmt::Store {
            array: ARR_OUT,
            row: RowRef::Fixed(0),
            value: sum.mul(Expr::Lit(8.0f64.sqrt())),
        }],
        n_locals: 0,
        consts: vec![],
        irows: vec![],
        pinned_warp: Some(0),
        phase: 2,
    });

    Dfg {
        name: "viscosity".into(),
        ops,
        n_vars: (3 * n) as u32,
        arrays: vec![
            ArrayDecl { name: "temperature".into(), rows: 1, output: false },
            ArrayDecl { name: "mole_frac".into(), rows: n, output: false },
            ArrayDecl { name: "viscosity".into(), rows: 1, output: true },
        ],
        // All warps reduce their term values through shared memory (§3.2).
        force_shared: (0..n).map(|k| v_term(n, k)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{Compiler, Variant};
    use crate::config::CompileOptions;
    use crate::kernels::launch_arrays;
    use chemkin::reference::reference_viscosity;
    use chemkin::state::{GridDims, GridState};
    use chemkin::synth;
    use gpu_sim::arch::GpuArch;
    use gpu_sim::launch::{launch, LaunchInputs, LaunchMode};

    fn small_tables() -> ViscosityTables {
        // A 6-species mechanism keeps tests fast.
        let m = synth::via_text(&synth::SynthConfig {
            name: "vtest".into(),
            n_species: 6,
            n_reactions: 8,
            n_qssa: 0,
            n_stiff: 0,
            seed: 42,
        });
        ViscosityTables::build(&m)
    }

    fn check_against_reference(kernel: &gpu_sim::isa::Kernel, t: &ViscosityTables, arch: &GpuArch) {
        let points = kernel.points_per_cta * 3;
        let g = GridState::random(GridDims { nx: points, ny: 1, nz: 1 }, t.n, 7);
        let expect = reference_viscosity(t, &g);
        let arrays = launch_arrays(&kernel.global_arrays, &g).expect("known arrays");
        let out = launch(kernel, arch, &LaunchInputs { arrays }, points, LaunchMode::Full).unwrap();
        for p in 0..points {
            let got = out.outputs[ARR_OUT as usize][p];
            let want = expect[p];
            assert!(
                ((got - want) / want).abs() < 1e-10,
                "point {p}: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn dfg_validates() {
        let t = small_tables();
        let d = viscosity_dfg(&t, 3);
        d.validate().unwrap();
        assert_eq!(d.ops.len(), 2 * t.n + 1);
    }

    #[test]
    fn baseline_matches_reference() {
        let t = small_tables();
        let d = viscosity_dfg(&t, 3);
        let c = Compiler::new(&GpuArch::kepler_k20c())
            .options(CompileOptions::with_warps(2))
            .compile(&d, Variant::Baseline)
            .unwrap();
        check_against_reference(&c.kernel, &t, &GpuArch::kepler_k20c());
    }

    #[test]
    fn warp_specialized_matches_reference_kepler() {
        let t = small_tables();
        let d = viscosity_dfg(&t, 3);
        let mut opts = CompileOptions::with_warps(3);
        opts.point_iters = 2;
        let c = Compiler::new(&GpuArch::kepler_k20c()).options(opts).compile(&d, Variant::WarpSpecialized).unwrap();
        check_against_reference(&c.kernel, &t, &GpuArch::kepler_k20c());
    }

    #[test]
    fn warp_specialized_matches_reference_fermi() {
        let t = small_tables();
        let d = viscosity_dfg(&t, 2);
        let opts = CompileOptions::with_warps(2);
        let c = Compiler::new(&GpuArch::fermi_c2070()).options(opts).compile(&d, Variant::WarpSpecialized).unwrap();
        check_against_reference(&c.kernel, &t, &GpuArch::fermi_c2070());
    }

    #[test]
    fn term_ops_overlay() {
        // The term ops all share a skeleton, so overlaying should produce
        // grouped emissions rather than per-warp code.
        let t = small_tables();
        let d = viscosity_dfg(&t, 3);
        let opts = CompileOptions::with_warps(3);
        let c = Compiler::new(&GpuArch::kepler_k20c()).options(opts).compile(&d, Variant::WarpSpecialized).unwrap();
        assert!(
            c.stats.overlay_groups >= 2,
            "expected overlaid groups, got {:?}",
            c.stats
        );
    }

    #[test]
    fn constant_footprint_matches_paper_formula() {
        // Term ops carry 2(N-1) constants each: the paper's two doubles per
        // ordered pair (§3.2).
        let t = small_tables();
        let d = viscosity_dfg(&t, 3);
        let term_consts: usize = d.ops[t.n].consts.len();
        assert_eq!(term_consts, 2 * (t.n - 1));
    }
}
