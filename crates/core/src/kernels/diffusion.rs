//! Diffusion kernel frontend (paper §3.3, Figure 5).
//!
//! Per grid point and species `i`:
//!
//! ```text
//! d_ij(T)  = exp(delta_ij0 + delta_ij1 T + delta_ij2 T^2 + delta_ij3 T^3)
//! mass     = sum_j m_j x_j
//! clamp_i  = max(eps, x_i)
//! Delta_i  = (P_atm/P) (sum_j clamp_j m_j - clamp_i m_i) / (mass sum_j clamp_j d_ij)
//! ```
//!
//! The `d` matrix is symmetric with a zero diagonal, so fewer than half the
//! entries are computed. The Figure 5 assignment gives column `c` the rows
//! `(c+1 .. c+cnt(c)) mod N` — `cnt = floor(N/2)` for odd `N`; for even `N`
//! the first `N/2` columns take `N/2` rows and the rest `N/2 - 1` — and
//! adjacent columns go to the same warp for locality.
//!
//! Each computed `d_rc` must contribute to both `Delta_r` and `Delta_c`
//! (§3.3). Column partial sums stay in the owning warp's **registers**;
//! row partial sums live in **shared memory** and are updated in `W`
//! rotation rounds — in round `k`, warp `w` updates only the rows owned by
//! warp `(w+k) mod W`, so no two warps touch a row concurrently and the
//! rounds are separated by named-barrier synchronization. These extra
//! barriers are precisely the overhead the paper measures in §6.2. The
//! resulting storage is the *Mixed* shared-memory mode of §4.1.

use crate::dfg::{Dfg, Operation};
use crate::expr::{Expr, RowRef, Stmt, VarId};
use chemkin::reference::tables::DiffusionTables;
use chemkin::{MIN_MOLE_FRAC, P_ATM};
use gpu_sim::isa::ArrayDecl;

/// Array index: temperature (input, 1 row).
pub const ARR_TEMP: u16 = 0;
/// Array index: pressure (input, 1 row).
pub const ARR_PRES: u16 = 1;
/// Array index: molar fractions (input, N rows).
pub const ARR_XFRAC: u16 = 2;
/// Array index: per-species diffusion output (N rows).
pub const ARR_OUT: u16 = 3;

/// Number of `d` values column `c` computes (Figure 5).
pub fn column_count(c: usize, n: usize) -> usize {
    if n % 2 == 1 || c < n / 2 {
        n / 2
    } else {
        n / 2 - 1
    }
}

/// The rows assigned to column `c` (Figure 5: offset consecutive rows).
pub fn column_rows(c: usize, n: usize) -> Vec<usize> {
    (1..=column_count(c, n)).map(|k| (c + k) % n).collect()
}

/// Contiguous column-to-warp ownership ("warps are assigned adjacent
/// columns to maximize locality").
pub fn owner_warp(c: usize, n: usize, warps: usize) -> usize {
    (c * warps / n).min(warps - 1)
}

/// Build the diffusion dataflow graph for `warps` warps.
pub fn diffusion_dfg(t: &DiffusionTables, warps: usize) -> Dfg {
    let n = t.n;
    let w = warps;
    assert!(n >= 2, "diffusion needs at least two species");
    let mut ops: Vec<Operation> = Vec::new();
    let mut next_var: VarId = 0;
    let alloc = |next_var: &mut VarId, k: usize| -> usize {
        let v = *next_var;
        *next_var += k as VarId;
        v as usize
    };

    // Vars: x_j, clamp_j per species.
    let v_x = alloc(&mut next_var, n);
    let v_clamp = alloc(&mut next_var, n);

    // Phase 0: per-species load + clamp, pinned to the column owner.
    for j in 0..n {
        ops.push(Operation {
            name: format!("clamp[{j}]"),
            body: vec![
                Stmt::DefVar(
                    (v_x + j) as VarId,
                    Expr::Input { array: ARR_XFRAC, row: RowRef::Slot(0) },
                ),
                Stmt::DefVar(
                    (v_clamp + j) as VarId,
                    Expr::Lit(MIN_MOLE_FRAC).max(Expr::Var((v_x + j) as VarId)),
                ),
            ],
            n_locals: 0,
            consts: vec![],
            irows: vec![j as u32],
            pinned_warp: Some(owner_warp(j, n, w)),
            phase: 0,
        });
    }

    // Phase 1: mass / sum(clamp*m) / pressure scale, on warp 0.
    let v_mass = alloc(&mut next_var, 1);
    let v_summw = alloc(&mut next_var, 1);
    let v_pscale = alloc(&mut next_var, 1);
    {
        let mut mass = Expr::Lit(0.0);
        let mut summw = Expr::Lit(0.0);
        for j in 0..n {
            mass = Expr::Var((v_x + j) as VarId).fma(Expr::Const(j as u16), mass);
            summw = Expr::Var((v_clamp + j) as VarId).fma(Expr::Const(j as u16), summw);
        }
        ops.push(Operation {
            name: "prep".into(),
            body: vec![
                Stmt::DefVar(v_mass as VarId, mass),
                Stmt::DefVar(v_summw as VarId, summw),
                Stmt::DefVar(
                    v_pscale as VarId,
                    Expr::Lit(P_ATM).div(Expr::Input { array: ARR_PRES, row: RowRef::Fixed(0) }),
                ),
            ],
            n_locals: 0,
            consts: t.weights.clone(),
            irows: vec![],
            pinned_warp: Some(0),
            phase: 1,
        });
    }

    // Rotation rounds: acc/row chains (SSA versions).
    let mut acc_ver: Vec<Vec<VarId>> = vec![Vec::new(); n]; // per column
    let mut row_ver: Vec<Vec<VarId>> = vec![Vec::new(); n]; // per row
    for k in 0..w {
        for warp in 0..w {
            let region_owner = (warp + k) % w;
            // Pairs (r, c): column owned by `warp`, row owned by the
            // rotation target.
            let mut pairs: Vec<(usize, usize)> = Vec::new();
            for c in 0..n {
                if owner_warp(c, n, w) != warp {
                    continue;
                }
                for r in column_rows(c, n) {
                    if owner_warp(r, n, w) == region_owner {
                        pairs.push((r, c));
                    }
                }
            }
            if pairs.is_empty() {
                continue;
            }
            let mut body =
                vec![Stmt::Local(0, Expr::Input { array: ARR_TEMP, row: RowRef::Fixed(0) })];
            let mut consts = Vec::new();
            let mut n_locals = 1u16;
            // Compute each d once into a local; accumulate column partials
            // (registers) and row partials (shared chain updates).
            let mut col_acc_expr: Vec<(usize, Expr)> = Vec::new();
            let mut row_add_expr: Vec<(usize, Expr)> = Vec::new();
            for &(r, c) in &pairs {
                let base = consts.len() as u16;
                let coef = t.delta.pair(r, c);
                consts.extend_from_slice(&coef);
                let l = n_locals;
                n_locals += 1;
                // d = exp(Horner(T)).
                let poly = Expr::Const(base + 3)
                    .fma(Expr::Local(0), Expr::Const(base + 2))
                    .fma(Expr::Local(0), Expr::Const(base + 1))
                    .fma(Expr::Local(0), Expr::Const(base));
                body.push(Stmt::Local(l, poly.exp()));
                // Column partial: clamp_r * d; row partial: clamp_c * d.
                let cterm = Expr::Var((v_clamp + r) as VarId).mul(Expr::Local(l));
                let rterm = Expr::Var((v_clamp + c) as VarId).mul(Expr::Local(l));
                match col_acc_expr.iter_mut().find(|(cc, _)| *cc == c) {
                    Some((_, e)) => {
                        let old = std::mem::replace(e, Expr::Lit(0.0));
                        *e = old.add(cterm);
                    }
                    None => col_acc_expr.push((c, cterm)),
                }
                match row_add_expr.iter_mut().find(|(rr, _)| *rr == r) {
                    Some((_, e)) => {
                        let old = std::mem::replace(e, Expr::Lit(0.0));
                        *e = old.add(rterm);
                    }
                    None => row_add_expr.push((r, rterm)),
                }
            }
            for (c, e) in col_acc_expr {
                let prev = acc_ver[c].last().copied();
                let newv = next_var;
                next_var += 1;
                let full = match prev {
                    Some(p) => e.add(Expr::Var(p)),
                    None => e,
                };
                body.push(Stmt::DefVar(newv, full));
                acc_ver[c].push(newv);
            }
            for (r, e) in row_add_expr {
                let prev = row_ver[r].last().copied();
                let newv = next_var;
                next_var += 1;
                let full = match prev {
                    Some(p) => e.add(Expr::Var(p)),
                    None => e,
                };
                body.push(Stmt::DefVar(newv, full));
                row_ver[r].push(newv);
            }
            ops.push(Operation {
                name: format!("round[{warp}][{k}]"),
                body,
                n_locals,
                consts,
                irows: vec![],
                pinned_warp: Some(warp),
                phase: 2 + k as u32,
            });
        }
    }

    // Final per-column output ops.
    for c in 0..n {
        let acc = acc_ver[c].last().copied();
        let row = row_ver[c].last().copied();
        let denom = match (acc, row) {
            (Some(a), Some(r)) => Expr::Var(a).add(Expr::Var(r)),
            (Some(a), None) => Expr::Var(a),
            (None, Some(r)) => Expr::Var(r),
            (None, None) => Expr::Lit(1.0), // unreachable for n >= 2
        };
        // Delta_c = pscale * (summw - clamp_c*m_c) / (mass * denom).
        let numer = Expr::Var(v_summw as VarId)
            .sub(Expr::Var((v_clamp + c) as VarId).mul(Expr::Const(0)));
        let value = Expr::Var(v_pscale as VarId)
            .mul(numer)
            .div(Expr::Var(v_mass as VarId).mul(denom));
        ops.push(Operation {
            name: format!("delta[{c}]"),
            body: vec![Stmt::Store { array: ARR_OUT, row: RowRef::Slot(0), value }],
            n_locals: 0,
            consts: vec![t.weights[c]],
            irows: vec![c as u32],
            pinned_warp: Some(owner_warp(c, n, w)),
            phase: 2 + w as u32 + 1,
        });
    }

    Dfg {
        name: "diffusion".into(),
        ops,
        n_vars: next_var,
        arrays: vec![
            ArrayDecl { name: "temperature".into(), rows: 1, output: false },
            ArrayDecl { name: "pressure".into(), rows: 1, output: false },
            ArrayDecl { name: "mole_frac".into(), rows: n, output: false },
            ArrayDecl { name: "diffusion_out".into(), rows: n, output: true },
        ],
        force_shared: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{Compiler, Variant};
    use crate::config::{CompileOptions, Placement};
    use crate::kernels::launch_arrays;
    use chemkin::reference::reference_diffusion;
    use chemkin::state::{GridDims, GridState};
    use chemkin::synth;
    use gpu_sim::arch::GpuArch;
    use gpu_sim::launch::{launch, LaunchInputs, LaunchMode};

    fn tables(n: usize) -> DiffusionTables {
        let m = synth::via_text(&synth::SynthConfig {
            name: "dtest".into(),
            n_species: n,
            n_reactions: 8,
            n_qssa: 0,
            n_stiff: 0,
            seed: 9,
        });
        DiffusionTables::build(&m)
    }

    #[test]
    fn figure5_shapes() {
        // Figure 5 left: N=4 — columns compute 2,2,1,1 values.
        assert_eq!(column_count(0, 4), 2);
        assert_eq!(column_count(1, 4), 2);
        assert_eq!(column_count(2, 4), 1);
        assert_eq!(column_count(3, 4), 1);
        // Figure 5 right: N=5 — every column computes 2 values.
        for c in 0..5 {
            assert_eq!(column_count(c, 5), 2);
        }
        assert_eq!(column_rows(3, 5), vec![4, 0]);
    }

    #[test]
    fn every_pair_computed_exactly_once() {
        for n in [2usize, 3, 4, 5, 8, 13, 30, 52] {
            let mut seen = vec![false; n * n];
            for c in 0..n {
                for r in column_rows(c, n) {
                    assert_ne!(r, c, "diagonal must not appear");
                    let (a, b) = (r.min(c), r.max(c));
                    assert!(!seen[a * n + b], "pair ({a},{b}) duplicated at n={n}");
                    seen[a * n + b] = true;
                }
            }
            let covered = seen.iter().filter(|&&s| s).count();
            assert_eq!(covered, n * (n - 1) / 2, "n={n}");
        }
    }

    fn check(kernel: &gpu_sim::isa::Kernel, t: &DiffusionTables, arch: &GpuArch) {
        let points = kernel.points_per_cta * 2;
        let g = GridState::random(GridDims { nx: points, ny: 1, nz: 1 }, t.n, 21);
        let expect = reference_diffusion(t, &g);
        let arrays = launch_arrays(&kernel.global_arrays, &g).expect("known arrays");
        let out = launch(kernel, arch, &LaunchInputs { arrays }, points, LaunchMode::Full).unwrap();
        for s in 0..t.n {
            for p in 0..points {
                let got = out.outputs[ARR_OUT as usize][s * points + p];
                let want = expect[s * points + p];
                assert!(
                    ((got - want) / want).abs() < 1e-10,
                    "species {s} point {p}: got {got}, want {want}"
                );
            }
        }
    }

    #[test]
    fn baseline_matches_reference() {
        let t = tables(6);
        let d = diffusion_dfg(&t, 2);
        let c =
            Compiler::new(&GpuArch::kepler_k20c())
            .options(CompileOptions::with_warps(2))
            .compile(&d, Variant::Baseline)
            .unwrap();
        check(&c.kernel, &t, &GpuArch::kepler_k20c());
    }

    #[test]
    fn warp_specialized_matches_reference_kepler() {
        let t = tables(6);
        let d = diffusion_dfg(&t, 3);
        let mut opts = CompileOptions::with_warps(3);
        opts.placement = Placement::Mixed(64);
        opts.point_iters = 2;
        let c = Compiler::new(&GpuArch::kepler_k20c()).options(opts).compile(&d, Variant::WarpSpecialized).unwrap();
        check(&c.kernel, &t, &GpuArch::kepler_k20c());
    }

    #[test]
    fn warp_specialized_matches_reference_fermi() {
        let t = tables(7);
        let d = diffusion_dfg(&t, 2);
        let mut opts = CompileOptions::with_warps(2);
        opts.placement = Placement::Mixed(64);
        let c = Compiler::new(&GpuArch::fermi_c2070()).options(opts).compile(&d, Variant::WarpSpecialized).unwrap();
        check(&c.kernel, &t, &GpuArch::fermi_c2070());
    }

    #[test]
    fn rounds_generate_extra_barriers() {
        // Diffusion's rotation rounds must produce more sync points than
        // viscosity-style store-once communication (§6.2).
        let t = tables(8);
        let d = diffusion_dfg(&t, 4);
        let mut opts = CompileOptions::with_warps(4);
        opts.placement = Placement::Mixed(96);
        let c = Compiler::new(&GpuArch::kepler_k20c()).options(opts).compile(&d, Variant::WarpSpecialized).unwrap();
        assert!(c.stats.sync_points >= 4, "{:?}", c.stats);
    }
}
