//! The optimized **data-parallel** baseline compiler — the comparison point
//! of the paper's evaluation (§6).
//!
//! One thread handles one grid point (the traditional CUDA model, §3.1).
//! The whole dataflow graph executes sequentially per thread:
//!
//! * every dataflow value lives in thread registers, allocated by linear
//!   scan; when the working set exceeds the architectural register budget
//!   the allocator **spills to local memory** — producing exactly the
//!   local-memory traffic that makes the baseline kernels memory-bound
//!   (§6.1, §6.3);
//! * constants are read **through the constant cache** at each use
//!   (`LdConst` with immediate indices); mechanisms whose constant
//!   working set exceeds the 8 KB cache thrash it (§3.2);
//! * on Kepler, global loads use the LDG texture path and FMAs read
//!   constant-memory operands directly (§6 baseline optimizations).

use crate::config::CompileOptions;
use crate::dfg::Dfg;
use crate::expr::{emit_stmts, EmitCtx, RowRef, VarId};
use crate::{CResult, CompileError};
use gpu_sim::arch::GpuArch;
use gpu_sim::isa::{GlobalId, IdxOp, Instr, Kernel, Node, Op, PointRef, Reg};
use gpu_sim::WARP_SIZE;

/// Baseline compilation result.
#[derive(Debug, Clone)]
pub struct BaselineCompiled {
    /// The executable kernel.
    pub kernel: Kernel,
    /// Doubles spilled per thread.
    pub spilled_words: usize,
    /// Total constants placed in constant memory (bytes).
    pub const_bytes: usize,
    /// Maximum simultaneously-live dataflow values (working-set metric).
    pub max_live_vars: usize,
}

const N_SCRATCH: usize = 14;

#[derive(Debug, Clone, Copy)]
enum Home {
    Reg(u16),
    Spill(u32),
}

struct BaselineCtx<'a> {
    home: &'a [Home],
    const_base: usize,
    irows: &'a [u32],
    local_base: Reg,
    scratch_free: Vec<Reg>,
    scratch_hwm: usize,
    ldg: bool,
}

impl<'a> EmitCtx for BaselineCtx<'a> {
    fn point(&self) -> PointRef {
        PointRef::Thread
    }

    fn alloc_temp(&mut self) -> CResult<Reg> {
        if let Some(r) = self.scratch_free.pop() {
            return Ok(r);
        }
        if self.scratch_hwm >= N_SCRATCH {
            return Err(CompileError::ResourceExhausted("baseline scratch exhausted".into()));
        }
        let r = self.scratch_hwm as Reg;
        self.scratch_hwm += 1;
        Ok(r)
    }

    fn free_temp(&mut self, r: Reg) {
        self.scratch_free.push(r);
    }

    fn const_op(&mut self, slot: u16, code: &mut Vec<Node>) -> CResult<(Op, Option<Reg>)> {
        let tmp = self.alloc_temp()?;
        code.push(Node::Op(Instr::LdConst {
            dst: tmp,
            bank: 0,
            idx: IdxOp::Imm((self.const_base + slot as usize) as u32),
        }));
        Ok((Op::Reg(tmp), Some(tmp)))
    }

    fn consts_in_cache(&self) -> bool {
        true
    }

    fn row_idx(&mut self, row: &RowRef, _code: &mut Vec<Node>) -> CResult<IdxOp> {
        // All instances are inlined sequentially, so per-instance rows
        // resolve statically.
        Ok(match row {
            RowRef::Fixed(r) => IdxOp::Imm(*r),
            RowRef::Slot(s) => IdxOp::Imm(self.irows[*s as usize]),
        })
    }

    fn read_var(&mut self, v: VarId, code: &mut Vec<Node>) -> CResult<(Op, Option<Reg>)> {
        match self.home[v as usize] {
            Home::Reg(r) => Ok((Op::Reg(self.local_base + r), None)),
            Home::Spill(slot) => {
                let tmp = self.alloc_temp()?;
                code.push(Node::Op(Instr::LdLocal { dst: tmp, slot }));
                Ok((Op::Reg(tmp), Some(tmp)))
            }
        }
    }

    fn write_var(&mut self, v: VarId, val: Op, code: &mut Vec<Node>) -> CResult<()> {
        match self.home[v as usize] {
            Home::Reg(r) => code.push(Node::Op(Instr::DMov { dst: self.local_base + r, src: val })),
            Home::Spill(slot) => code.push(Node::Op(Instr::StLocal { src: val, slot })),
        }
        Ok(())
    }

    fn read_local(&mut self, l: u16, _code: &mut Vec<Node>) -> CResult<Op> {
        Ok(Op::Reg(self.local_base + 512 + l))
    }

    fn write_local(&mut self, l: u16, val: Op, code: &mut Vec<Node>) -> CResult<()> {
        code.push(Node::Op(Instr::DMov { dst: self.local_base + 512 + l, src: val }));
        Ok(())
    }

    fn array_global(&self, array: u16) -> GlobalId {
        GlobalId(array as usize)
    }

    fn ldg(&self) -> bool {
        self.ldg
    }
}

/// Implementation behind the [`crate::Compiler`] front door (which also
/// needs the [`BaselineCompiled`]-specific statistics): compile the
/// dataflow graph as a purely data-parallel kernel.
pub(crate) fn baseline_impl(
    dfg: &Dfg,
    options: &CompileOptions,
    arch: &GpuArch,
) -> CResult<BaselineCompiled> {
    dfg.validate()?;
    let order = dfg.topo_order()?;
    let consumers = dfg.consumers();

    // Liveness over the sequential order.
    let mut opos = vec![0usize; dfg.ops.len()];
    for (i, &o) in order.iter().enumerate() {
        opos[o] = i;
    }
    let producers = dfg.producers()?;
    let n_vars = dfg.n_vars as usize;
    let mut def = vec![0usize; n_vars];
    let mut last = vec![0usize; n_vars];
    for v in 0..n_vars {
        def[v] = opos[producers[v]];
        last[v] = consumers[v].iter().map(|&c| opos[c]).max().unwrap_or(def[v]);
    }

    let max_locals = dfg.ops.iter().map(|o| o.n_locals as usize).max().unwrap_or(0);
    let budget_total = (arch.max_regs_per_thread.saturating_sub(4)) / 2;
    let var_budget = budget_total.saturating_sub(N_SCRATCH + max_locals).max(2);

    // Linear-scan allocation with spilling of furthest-last-use values.
    let mut by_def: Vec<VarId> = (0..dfg.n_vars).collect();
    by_def.sort_by_key(|&v| def[v as usize]);
    let mut home = vec![Home::Spill(u32::MAX); n_vars];
    let mut active: Vec<(usize, VarId, u16)> = Vec::new();
    let mut free: Vec<u16> = Vec::new();
    let mut next_reg = 0u16;
    let mut n_spill = 0u32;
    let mut max_live = 0usize;
    for v in by_def {
        let start = def[v as usize];
        let mut i = 0;
        while i < active.len() {
            if active[i].0 < start {
                free.push(active[i].2);
                active.swap_remove(i);
            } else {
                i += 1;
            }
        }
        max_live = max_live.max(active.len() + 1);
        let end = last[v as usize];
        if let Some(r) = free.pop() {
            home[v as usize] = Home::Reg(r);
            active.push((end, v, r));
        } else if (next_reg as usize) < var_budget {
            home[v as usize] = Home::Reg(next_reg);
            active.push((end, v, next_reg));
            next_reg += 1;
        } else {
            let worst = active.iter().enumerate().max_by_key(|(_, (e, _, _))| *e).map(|(i, _)| i);
            match worst {
                Some(wi) if active[wi].0 > end => {
                    let (_, wv, wr) = active.swap_remove(wi);
                    home[wv as usize] = Home::Spill(n_spill);
                    n_spill += 1;
                    home[v as usize] = Home::Reg(wr);
                    active.push((end, v, wr));
                }
                _ => {
                    home[v as usize] = Home::Spill(n_spill);
                    n_spill += 1;
                }
            }
        }
    }

    // Emit ops sequentially; constants concatenate into bank 0.
    let mut bank: Vec<f64> = Vec::new();
    let mut body: Vec<Node> = Vec::new();
    let local_base = N_SCRATCH as Reg;
    for &o in &order {
        let op = &dfg.ops[o];
        let const_base = bank.len();
        bank.extend_from_slice(&op.consts);
        let mut ctx = BaselineCtx {
            home: &home,
            const_base,
            irows: &op.irows,
            local_base,
            scratch_free: Vec::new(),
            scratch_hwm: 0,
            ldg: arch.has_ldg,
        };
        emit_stmts(&op.body, &mut ctx, &mut body)?;
    }

    // Remap local ids (emitted at local_base + 512 + l) into the compact
    // range right after the var registers.
    let n_var_regs = next_reg as usize;
    let remap = |r: Reg| -> Reg {
        if r >= local_base + 512 {
            local_base + n_var_regs as Reg + (r - local_base - 512)
        } else {
            r
        }
    };
    crate::codegen::remap_nodes(&mut body, &remap);

    let dregs = N_SCRATCH + n_var_regs + max_locals;
    let kernel = Kernel {
        name: format!("{}_baseline", dfg.name),
        body,
        warps_per_cta: options.warps,
        points_per_cta: options.warps * WARP_SIZE,
        dregs_per_thread: dregs,
        iregs_per_thread: 2,
        shared_words: 0,
        local_words_per_thread: n_spill as usize,
        const_banks: if bank.is_empty() { vec![] } else { vec![bank.clone()] },
        iconst_banks: vec![],
        barriers_used: 0,
        global_arrays: dfg.arrays.clone(),
        spilled_bytes_per_thread: n_spill as usize * 8,
        exp_const_from_registers: false,
    };
    kernel.check().map_err(CompileError::Internal)?;
    crate::verify::enforce(&kernel, arch, options)?;
    Ok(BaselineCompiled {
        kernel,
        spilled_words: n_spill as usize,
        const_bytes: bank.len() * 8,
        max_live_vars: max_live,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfg::test_support::diamond;
    use gpu_sim::launch::{launch, LaunchInputs, LaunchMode};

    #[test]
    fn diamond_baseline_matches_reference() {
        let d = diamond();
        let opts = CompileOptions::with_warps(2);
        let c = baseline_impl(&d, &opts, &GpuArch::kepler_k20c()).unwrap();
        assert_eq!(c.kernel.points_per_cta, 64);
        let points = 128;
        let input: Vec<f64> = (0..points).map(|i| i as f64 * 0.5).collect();
        let arch = GpuArch::kepler_k20c();
        let out = launch(&c.kernel, &arch, &LaunchInputs { arrays: vec![&input, &[]] }, points, LaunchMode::Full)
            .unwrap();
        for p in 0..points {
            let x = input[p];
            assert_eq!(out.outputs[1][p], x * 2.0 + (x + 10.0), "point {p}");
        }
    }

    #[test]
    fn tiny_budget_forces_spills() {
        // A chain of many simultaneously-live vars on a tiny fake arch.
        let mut arch = GpuArch::fermi_c2070();
        arch.max_regs_per_thread = 40; // (40-4)/2 - 14 = 4 var regs
        let mut ops = Vec::new();
        let n = 12u32;
        for i in 0..n {
            ops.push(crate::dfg::Operation {
                name: format!("v{i}"),
                body: vec![crate::expr::Stmt::DefVar(
                    i,
                    crate::expr::Expr::Input { array: 0, row: RowRef::Fixed(0) },
                )],
                n_locals: 0,
                consts: vec![],
                irows: vec![],
                pinned_warp: None,
                phase: 0,
            });
        }
        // Sink keeps all alive simultaneously.
        ops.push(crate::dfg::Operation {
            name: "sink".into(),
            body: vec![crate::expr::Stmt::Store {
                array: 1,
                row: RowRef::Fixed(0),
                value: (0..n).fold(crate::expr::Expr::Lit(0.0), |a, v| {
                    a.add(crate::expr::Expr::Var(v))
                }),
            }],
            n_locals: 0,
            consts: vec![],
            irows: vec![],
            pinned_warp: None,
            phase: 1,
        });
        let d = Dfg {
            name: "spilly".into(),
            ops,
            n_vars: n,
            arrays: vec![
                gpu_sim::isa::ArrayDecl { name: "in".into(), rows: 1, output: false },
                gpu_sim::isa::ArrayDecl { name: "out".into(), rows: 1, output: true },
            ],
            force_shared: vec![],
        };
        let c = baseline_impl(&d, &CompileOptions::with_warps(1), &arch).unwrap();
        assert!(c.spilled_words > 0, "expected spills");
        assert_eq!(c.kernel.spilled_bytes_per_thread, c.spilled_words * 8);
        // And the kernel still computes the right value.
        let points = 32;
        let input = vec![3.0; points];
        let out = launch(&c.kernel, &arch, &LaunchInputs { arrays: vec![&input, &[]] }, points, LaunchMode::Full)
            .unwrap();
        assert_eq!(out.outputs[1][0], 36.0);
    }

    #[test]
    fn constants_go_to_constant_memory() {
        let d = diamond();
        let c = baseline_impl(&d, &CompileOptions::with_warps(1), &GpuArch::fermi_c2070()).unwrap();
        assert_eq!(c.const_bytes, 2 * 8);
        assert_eq!(c.kernel.const_banks.len(), 1);
    }
}
