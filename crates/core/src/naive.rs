//! The naïve warp-specialized code generator — Figure 9's strawman.
//!
//! "The naïve code generation strategy of using a top-level switch
//! statement on the warp ID to send each warp to a different block of code
//! violates [the GPU's same-code assumption] and results in severe
//! performance degradation" (§5). This module emits exactly that: the same
//! mapping, schedule, and barrier allocation as the real code generator,
//! but each warp's entire instruction stream becomes its own case of one
//! indirect `WarpSwitch`, with constants inlined as immediates — so warps
//! execute disjoint address ranges and the instruction cache thrashes once
//! enough warp paths exist (Figure 9 shows the cliff at six).

use crate::barrier_alloc::allocate;
use crate::codegen::{Compiled, CompileStats};
use crate::config::CompileOptions;
use crate::dfg::Dfg;
use crate::expr::{emit_stmts, EmitCtx, RowRef, VarId};
use crate::mapping::{map_ops, Mapping};
use crate::sync::{schedule, Item, Schedule};
use crate::{CResult, CompileError};
use gpu_sim::arch::GpuArch;
use gpu_sim::isa::{GlobalId, IdxOp, Instr, Kernel, Node, Op, PointRef, Reg, SAddr};
use gpu_sim::WARP_SIZE;

const N_SCRATCH: usize = 14;

struct NaiveCtx<'a> {
    mapping: &'a Mapping,
    sched: &'a Schedule,
    producers: &'a [usize],
    warp: usize,
    consts: &'a [f64],
    irows: &'a [u32],
    var_reg: &'a [Option<u16>],
    local_base: Reg,
    scratch_free: Vec<Reg>,
    scratch_hwm: usize,
    cur_outputs: Vec<VarId>,
    ldg: bool,
}

impl<'a> EmitCtx for NaiveCtx<'a> {
    fn point(&self) -> PointRef {
        PointRef::Lane
    }
    fn alloc_temp(&mut self) -> CResult<Reg> {
        if let Some(r) = self.scratch_free.pop() {
            return Ok(r);
        }
        if self.scratch_hwm >= N_SCRATCH {
            return Err(CompileError::ResourceExhausted("naive scratch exhausted".into()));
        }
        let r = self.scratch_hwm as Reg;
        self.scratch_hwm += 1;
        Ok(r)
    }
    fn free_temp(&mut self, r: Reg) {
        self.scratch_free.push(r);
    }
    fn const_op(&mut self, slot: u16, _code: &mut Vec<Node>) -> CResult<(Op, Option<Reg>)> {
        // Inlined immediate — per-warp code, no sharing (the whole point).
        Ok((Op::Imm(self.consts[slot as usize]), None))
    }
    fn consts_in_cache(&self) -> bool {
        false
    }
    fn row_idx(&mut self, row: &RowRef, _code: &mut Vec<Node>) -> CResult<IdxOp> {
        Ok(match row {
            RowRef::Fixed(r) => IdxOp::Imm(*r),
            RowRef::Slot(s) => IdxOp::Imm(self.irows[*s as usize]),
        })
    }
    fn read_var(&mut self, v: VarId, code: &mut Vec<Node>) -> CResult<(Op, Option<Reg>)> {
        let pw = self.mapping.warp_of[self.producers[v as usize]];
        if pw == self.warp || self.cur_outputs.contains(&v) {
            match self.var_reg[v as usize] {
                Some(r) => Ok((Op::Reg(self.local_base + 512 + r), None)),
                None => Err(CompileError::Internal(format!("naive: var {v} unallocated"))),
            }
        } else {
            let slot = self.sched.var_slot[v as usize].ok_or_else(|| {
                CompileError::Internal(format!("naive: var {v} has no shared slot"))
            })?;
            let tmp = self.alloc_temp()?;
            code.push(Node::Op(Instr::LdShared {
                dst: tmp,
                addr: SAddr::lane((slot * WARP_SIZE) as u32),
            }));
            Ok((Op::Reg(tmp), Some(tmp)))
        }
    }
    fn write_var(&mut self, v: VarId, val: Op, code: &mut Vec<Node>) -> CResult<()> {
        match self.var_reg[v as usize] {
            Some(r) => {
                code.push(Node::Op(Instr::DMov { dst: self.local_base + 512 + r, src: val }))
            }
            None => return Err(CompileError::Internal("naive: write unallocated var".into())),
        }
        Ok(())
    }
    fn read_local(&mut self, l: u16, _code: &mut Vec<Node>) -> CResult<Op> {
        Ok(Op::Reg(self.local_base + l))
    }
    fn write_local(&mut self, l: u16, val: Op, code: &mut Vec<Node>) -> CResult<()> {
        code.push(Node::Op(Instr::DMov { dst: self.local_base + l, src: val }));
        Ok(())
    }
    fn array_global(&self, array: u16) -> GlobalId {
        GlobalId(array as usize)
    }
    fn ldg(&self) -> bool {
        self.ldg
    }
}

/// Implementation behind the [`crate::Compiler`] front door: compile with
/// the naïve top-level warp switch (Figure 9's comparison).
pub(crate) fn naive_impl(dfg: &Dfg, options: &CompileOptions, arch: &GpuArch) -> CResult<Compiled> {
    dfg.validate()?;
    let mapping = map_ops(dfg, options)?;
    let max_sync = crate::codegen::sync_barrier_budget(arch);
    let sched = schedule(dfg, &mapping, options, max_sync as usize)?;
    sched.verify(dfg)?;
    let barriers = allocate(&sched, max_sync)?;
    let producers = dfg.producers()?;
    let w = options.warps;

    // Per-warp var register assignment (no pressure handling; the naive
    // generator is a performance strawman, not a production path).
    let mut var_reg: Vec<Option<u16>> = vec![None; dfg.n_vars as usize];
    let mut per_warp_count = vec![0u16; w];
    for v in 0..dfg.n_vars as usize {
        let pw = mapping.warp_of[producers[v]];
        var_reg[v] = Some(per_warp_count[pw]);
        per_warp_count[pw] += 1;
    }
    let max_vars = per_warp_count.iter().max().copied().unwrap_or(0) as usize;
    let max_locals = dfg.ops.iter().map(|o| o.n_locals as usize).max().unwrap_or(0);

    let mut cases: Vec<Vec<Node>> = Vec::with_capacity(w);
    for warp in 0..w {
        let mut code: Vec<Node> = Vec::new();
        for (_, item) in &sched.items[warp] {
            match item {
                Item::Op(o) => {
                    let op = &dfg.ops[*o];
                    let mut ctx = NaiveCtx {
                        mapping: &mapping,
                        sched: &sched,
                        producers: &producers,
                        warp,
                        consts: &op.consts,
                        irows: &op.irows,
                        var_reg: &var_reg,
                        local_base: N_SCRATCH as Reg,
                        scratch_free: Vec::new(),
                        scratch_hwm: 0,
                        cur_outputs: op.outputs(),
                        ldg: arch.has_ldg,
                    };
                    emit_stmts(&op.body, &mut ctx, &mut code)?;
                }
                Item::StoreVar(v) => {
                    let slot = sched.var_slot[*v as usize]
                        .ok_or_else(|| CompileError::Internal("naive: slotless store".into()))?;
                    let r = var_reg[*v as usize].unwrap();
                    code.push(Node::Op(Instr::StShared {
                        src: Op::Reg(N_SCRATCH as Reg + 512 + r),
                        addr: SAddr::lane((slot * WARP_SIZE) as u32),
                        lane_pred: None,
                    }));
                }
                Item::Arrive(s) => {
                    if !options.unsafe_remove_barriers {
                        let sp = &sched.sync_points[*s];
                        code.push(Node::Op(Instr::BarArrive {
                            bar: barriers.of_sync[*s],
                            warps: sp.warps().len() as u16,
                        }));
                    }
                }
                Item::Wait(s) => {
                    if !options.unsafe_remove_barriers {
                        let sp = &sched.sync_points[*s];
                        code.push(Node::Op(Instr::BarSync {
                            bar: barriers.of_sync[*s],
                            warps: sp.warps().len() as u16,
                        }));
                    }
                }
                Item::FullBarrier(_) => {
                    if !options.unsafe_remove_barriers {
                        code.push(Node::Op(Instr::BarSync {
                            bar: barriers.full_barrier,
                            warps: w as u16,
                        }));
                    }
                }
            }
        }
        cases.push(code);
    }

    let mut loop_body = vec![Node::WarpSwitch { case_of_warp: (0..w).collect(), cases }];
    if !sched.sync_points.is_empty() && !options.unsafe_remove_barriers && options.point_iters > 1
    {
        loop_body.push(Node::Op(Instr::BarSync { bar: barriers.full_barrier, warps: w as u16 }));
    }
    let mut full_body = vec![Node::PointLoop { iters: options.point_iters, body: loop_body }];

    // Remap local/var registers into a compact range.
    let local_base = N_SCRATCH as Reg;
    let remap = move |r: Reg| -> Reg {
        if r >= local_base + 512 {
            local_base + max_locals as Reg + (r - local_base - 512)
        } else {
            r
        }
    };
    crate::codegen::remap_nodes(&mut full_body, &remap);

    let uses_full = !sched.full_barriers.is_empty()
        || (!sched.sync_points.is_empty()
            && !options.unsafe_remove_barriers
            && options.point_iters > 1);
    let kernel_barriers = (barriers.barriers_used + usize::from(uses_full)).max(1);

    let kernel = Kernel {
        name: format!("{}_naive", dfg.name),
        body: full_body,
        warps_per_cta: w,
        points_per_cta: WARP_SIZE * options.point_iters as usize,
        dregs_per_thread: N_SCRATCH + max_locals + max_vars,
        iregs_per_thread: 2,
        shared_words: sched.n_slots * WARP_SIZE,
        local_words_per_thread: 0,
        const_banks: vec![],
        iconst_banks: vec![],
        barriers_used: kernel_barriers.min(arch.named_barriers_per_sm),
        global_arrays: dfg.arrays.clone(),
        spilled_bytes_per_thread: 0,
        exp_const_from_registers: options.exp_const_from_registers,
    };
    kernel.check().map_err(CompileError::Internal)?;
    crate::verify::enforce(&kernel, arch, options)?;
    let stats = CompileStats {
        sync_points: sched.sync_points.len(),
        merged_syncs: sched.merged_syncs,
        barriers_used: kernel_barriers,
        shared_slots: sched.n_slots,
        solo_groups: dfg.ops.len(),
        flop_imbalance: mapping.flop_imbalance(),
        ..Default::default()
    };
    Ok(Compiled { kernel, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::launch_arrays;
    use crate::kernels::viscosity::{viscosity_dfg, ARR_OUT};
    use chemkin::reference::reference_viscosity;
    use chemkin::reference::tables::ViscosityTables;
    use chemkin::state::{GridDims, GridState};
    use chemkin::synth;
    use gpu_sim::launch::{launch, LaunchInputs, LaunchMode};

    #[test]
    fn naive_viscosity_matches_reference() {
        let m = synth::via_text(&synth::SynthConfig {
            name: "nv".into(),
            n_species: 6,
            n_reactions: 8,
            n_qssa: 0,
            n_stiff: 0,
            seed: 5,
        });
        let t = ViscosityTables::build(&m);
        let d = viscosity_dfg(&t, 3);
        let opts = CompileOptions::with_warps(3);
        let arch = GpuArch::kepler_k20c();
        let c = naive_impl(&d, &opts, &arch).unwrap();
        let points = c.kernel.points_per_cta * 2;
        let g = GridState::random(GridDims { nx: points, ny: 1, nz: 1 }, t.n, 3);
        let expect = reference_viscosity(&t, &g);
        let arrays = launch_arrays(&c.kernel.global_arrays, &g).expect("known arrays");
        let out = launch(&c.kernel, &arch, &LaunchInputs { arrays }, points, LaunchMode::Full)
            .unwrap();
        for p in 0..points {
            let (got, want) = (out.outputs[ARR_OUT as usize][p], expect[p]);
            assert!(((got - want) / want).abs() < 1e-10, "{got} vs {want}");
        }
    }

    #[test]
    fn naive_code_is_much_larger_than_overlaid() {
        let m = synth::via_text(&synth::SynthConfig {
            name: "nv2".into(),
            n_species: 8,
            n_reactions: 8,
            n_qssa: 0,
            n_stiff: 0,
            seed: 6,
        });
        let t = ViscosityTables::build(&m);
        let d = viscosity_dfg(&t, 4);
        let opts = CompileOptions::with_warps(4);
        let arch = GpuArch::kepler_k20c();
        let naive = naive_impl(&d, &opts, &arch).unwrap();
        let overlaid = crate::codegen::compile_warp_specialized(&d, &opts, &arch, None).unwrap();
        let ni = naive.kernel.static_instructions();
        let oi = overlaid.kernel.static_instructions();
        assert!(ni as f64 > 1.3 * oi as f64, "naive {ni} instructions vs overlaid {oi}");
    }
}
