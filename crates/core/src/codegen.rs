//! Warp-specialized code generation (paper §5).
//!
//! Takes a mapped and scheduled dataflow graph and emits a `gpu-sim`
//! kernel using the paper's techniques:
//!
//! * **Overlaying** (§5.1): per-warp item streams are walked with
//!   simultaneous cursors; when several warps' next operations are
//!   structurally identical *and* resolve to identical code (registers,
//!   shared addresses, constant segment), one instance is emitted for the
//!   whole group under a bit-mask `WarpIf`. The paper's footnote about
//!   "standardizing variable names" corresponds to our code-equality
//!   check: a candidate warp joins the group only if its resolved code is
//!   bit-identical to the seed's.
//! * **Constant arrays with padding** (§5.2): each overlaid emission
//!   allocates a constant segment at the same offset in every warp's
//!   constant array; warps not participating keep padding values there.
//! * **Constant deduplication** (§5.2): per-warp constant arrays are
//!   striped across the 32 lanes into registers loaded once in the kernel
//!   preamble (hoisted above the streaming point loop), and broadcast at
//!   each use — via shared-memory mirror on Fermi (Listing 2) or shuffle
//!   instructions on Kepler (Listing 3).
//! * **Warp indexing** (§5.3): per-instance global rows become per-warp
//!   integer constants loaded through an index constant bank, so overlaid
//!   code performs warp-dependent addressing without branching.

use crate::barrier_alloc::{allocate, BarrierAssignment};
use crate::config::CompileOptions;
use crate::dfg::{Dfg, OpId};
use crate::expr::{emit_stmts, EmitCtx, Expr, RowRef, Stmt, VarId};
use crate::mapping::{map_ops, Mapping};
use crate::sync::{schedule, Item, Schedule};
use crate::{CResult, CompileError};
use gpu_sim::arch::{BroadcastKind, GpuArch};
use gpu_sim::isa::{
    GlobalId, IdxInstr, IdxOp, Instr, Kernel, Node, Op, PointRef, Reg, SAddr,
};
use gpu_sim::WARP_SIZE;

/// Compilation statistics (autotuner and report inputs).
#[derive(Debug, Clone, Default)]
pub struct CompileStats {
    /// Synchronization points after grouping.
    pub sync_points: usize,
    /// Sync points merged by the grouping transformation.
    pub merged_syncs: usize,
    /// Physical named barriers used.
    pub barriers_used: usize,
    /// Shared 32-word slots used for communication.
    pub shared_slots: usize,
    /// Constant registers per thread (Figure 10 metric).
    pub const_regs_per_thread: usize,
    /// Overlaid emission groups covering more than one warp.
    pub overlay_groups: usize,
    /// Emissions that ended up warp-private.
    pub solo_groups: usize,
    /// Vars spilled to local memory.
    pub spilled_vars: usize,
    /// Per-warp double-constant array length (after padding).
    pub const_array_len: usize,
    /// FLOP imbalance of the mapping (max/mean).
    pub flop_imbalance: f64,
    /// Effective pipeline depth K after clamping and fallback gates
    /// (1 = classic single-buffered protocol).
    pub pipeline_depth: usize,
    /// Full CTA-wide pass barriers in the schedule. When non-zero the
    /// schedule already rendezvouses every warp and pipelining is
    /// disabled (`pipeline_depth` reads 1 regardless of the request).
    pub full_barriers: usize,
}

/// A compiled kernel plus its statistics.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The executable kernel.
    pub kernel: Kernel,
    /// Statistics.
    pub stats: CompileStats,
}

// Virtual register bases (remapped after emission).
const VR_SCRATCH: Reg = 0; // 0..N_SCRATCH
const N_SCRATCH: usize = 14;
const VR_VAR: Reg = 1000;
const VR_CREG: Reg = 20000;
// Index registers (fixed layout).
const IR_WARP: u16 = 0;
const IR_LANE: u16 = 1;
const IR_CBASE: u16 = 2;
const IR_IBASE: u16 = 3;
const IR_SCRATCH: u16 = 4;
const N_IREGS: usize = 6;
/// Pipeline ring offset `(pset % K) * n_slots * 32`, written by a
/// `PipeOff` at the top of each point iteration. Only allocated when the
/// pipeline depth K > 1.
const IR_PIPE: u16 = 6;
/// Pipelined warp-index segment anchor: `warp * K * istride`, computed in
/// the preamble. Each point iteration rebases `IR_IBASE` to
/// `IR_IPIPE + (pset % K) * istride`, selecting the stage-r copy of the
/// warp's index-constant segment (slot offsets pre-displaced by
/// `r * n_slots * 32`), so warp-indexed shared reads cost exactly the
/// same instructions as the single-buffered protocol.
const IR_IPIPE: u16 = 7;

/// Where a var's home value lives in its producer warp.
#[derive(Debug, Clone, Copy, PartialEq)]
enum VarHome {
    Reg(u16),
    Spill(u32),
}

/// Named-barrier colors available to pairwise sync points on `arch`: the
/// barrier file minus one entry reserved for full-CTA pass barriers,
/// clamped to the `u8` id space of the ISA's barrier operands.
pub(crate) fn sync_barrier_budget(arch: &GpuArch) -> u8 {
    arch.named_barriers_per_sm.saturating_sub(1).clamp(1, 255) as u8
}

/// Compile a dataflow graph into a warp-specialized kernel, optionally
/// recording a per-stage timing span for each Figure 8 pipeline stage
/// (see [`crate::compiler::StageTimer`]).
pub(crate) fn compile_warp_specialized(
    dfg: &Dfg,
    options: &CompileOptions,
    arch: &GpuArch,
    spans: Option<&mut Vec<gpu_sim::TraceEvent>>,
) -> CResult<Compiled> {
    let mut timer = crate::compiler::StageTimer::new(spans);
    dfg.validate()?;
    timer.mark("validate");
    let mapping = map_ops(dfg, options)?;
    timer.mark("mapping");
    let max_sync = sync_barrier_budget(arch);
    let sched = schedule(dfg, &mapping, options, max_sync as usize)?;
    timer.mark("schedule");
    sched.verify(dfg)?;
    timer.mark("schedule-verify");
    let barriers = allocate(&sched, max_sync)?;
    timer.mark("barrier-alloc");
    let compiled = emit(dfg, &mapping, &sched, &barriers, options, arch)?;
    timer.mark("emit");
    crate::verify::enforce(&compiled.kernel, arch, options)?;
    timer.mark("verify");
    Ok(compiled)
}

/// Per-warp register plan.
struct RegPlan {
    home: Vec<Option<VarHome>>, // per var (only for this warp's productions)
    n_var_regs: usize,
    n_spill: usize,
}

/// Linear-scan allocation of var home registers for one warp.
fn plan_registers(
    dfg: &Dfg,
    mapping: &Mapping,
    sched: &Schedule,
    warp: usize,
    budget: usize,
    uniform_shared_reads: bool,
) -> CResult<RegPlan> {
    let items = &sched.items[warp];
    let producers = dfg.producers()?;
    // def/last-use item indices per var produced in this warp.
    let mut def = vec![usize::MAX; dfg.n_vars as usize];
    let mut last = vec![0usize; dfg.n_vars as usize];
    for (i, (_, it)) in items.iter().enumerate() {
        match it {
            Item::Op(o) => {
                for v in dfg.ops[*o].outputs() {
                    def[v as usize] = i;
                    last[v as usize] = last[v as usize].max(i);
                }
                for v in dfg.ops[*o].inputs() {
                    // Same-warp consumers keep the register home alive —
                    // unless uniform shared reads route them through shared
                    // memory (then the home only lives until the store).
                    if mapping.warp_of[producers[v as usize]] == warp
                        && !(uniform_shared_reads
                            && sched.var_slot[v as usize].is_some())
                    {
                        last[v as usize] = last[v as usize].max(i);
                    }
                }
            }
            Item::StoreVar(v) => last[*v as usize] = last[*v as usize].max(i),
            _ => {}
        }
    }
    let mut order: Vec<VarId> = (0..dfg.n_vars)
        .filter(|&v| def[v as usize] != usize::MAX)
        .collect();
    order.sort_by_key(|&v| def[v as usize]);

    let mut home = vec![None; dfg.n_vars as usize];
    let mut free: Vec<u16> = Vec::new();
    let mut next_reg = 0u16;
    let mut n_spill = 0u32;
    // Active: (last_use, var, reg).
    let mut active: Vec<(usize, VarId, u16)> = Vec::new();
    for v in order {
        let start = def[v as usize];
        let mut i = 0;
        while i < active.len() {
            if active[i].0 < start {
                free.push(active[i].2);
                active.swap_remove(i);
            } else {
                i += 1;
            }
        }
        let end = last[v as usize];
        if let Some(r) = free.pop() {
            home[v as usize] = Some(VarHome::Reg(r));
            active.push((end, v, r));
        } else if (next_reg as usize) < budget {
            let r = next_reg;
            next_reg += 1;
            home[v as usize] = Some(VarHome::Reg(r));
            active.push((end, v, r));
        } else {
            // Spill the live var with the furthest last use (or this one).
            let worst = active
                .iter()
                .enumerate()
                .max_by_key(|(_, (e, _, _))| *e)
                .map(|(i, _)| i);
            match worst {
                Some(wi) if active[wi].0 > end => {
                    let (_, wv, wr) = active.swap_remove(wi);
                    home[wv as usize] = Some(VarHome::Spill(n_spill));
                    n_spill += 1;
                    home[v as usize] = Some(VarHome::Reg(wr));
                    active.push((end, v, wr));
                }
                _ => {
                    home[v as usize] = Some(VarHome::Spill(n_spill));
                    n_spill += 1;
                }
            }
        }
    }
    Ok(RegPlan { home, n_var_regs: next_reg as usize, n_spill: n_spill as usize })
}

/// The emission context for one warp group.
struct WsCtx<'a> {
    mapping: &'a Mapping,
    sched: &'a Schedule,
    plans: &'a [RegPlan],
    warp: usize,
    broadcast: BroadcastKind,
    /// Constant segment base for the op being emitted.
    seg_base: usize,
    iseg_base: usize,
    /// Frontend row-constant count of the op being emitted; compiler-
    /// generated shared-address constants are appended after these.
    irows_len: usize,
    /// Values of compiler-generated index constants (shared word offsets
    /// for cross-warp reads — the §5.3 warp-indexing scheme applied to
    /// shared memory, as in Listing 4's `scratch[index][lane_id]`).
    extra_irows: Vec<u32>,
    /// Op-local temp registers (allocated above scratch on demand).
    local_base: u16,
    /// Scratch pool.
    scratch_free: Vec<Reg>,
    scratch_hwm: usize,
    mirror_word: u32,
    producers: &'a [OpId],
    ldg: bool,
    /// Uniform shared reads (§3.2 discipline).
    uniform_reads: bool,
    /// Outputs of the op currently being emitted (always read from their
    /// register home — they may not be stored to shared yet).
    cur_outputs: Vec<VarId>,
}

impl<'a> WsCtx<'a> {
    fn home_of(&self, v: VarId) -> CResult<VarHome> {
        self.plans[self.warp].home[v as usize]
            .ok_or_else(|| CompileError::Internal(format!("var {v} has no home in warp")))
    }
}

impl<'a> EmitCtx for WsCtx<'a> {
    fn point(&self) -> PointRef {
        PointRef::Lane
    }

    fn alloc_temp(&mut self) -> CResult<Reg> {
        if let Some(r) = self.scratch_free.pop() {
            return Ok(r);
        }
        if self.scratch_hwm >= N_SCRATCH {
            return Err(CompileError::ResourceExhausted(
                "expression scratch registers exhausted".into(),
            ));
        }
        let r = VR_SCRATCH + self.scratch_hwm as Reg;
        self.scratch_hwm += 1;
        Ok(r)
    }

    fn free_temp(&mut self, r: Reg) {
        self.scratch_free.push(r);
    }

    fn const_op(&mut self, slot: u16, code: &mut Vec<Node>) -> CResult<(Op, Option<Reg>)> {
        let g = self.seg_base + slot as usize;
        let creg = VR_CREG + (g / WARP_SIZE) as Reg;
        let lane = (g % WARP_SIZE) as u8;
        let tmp = self.alloc_temp()?;
        match self.broadcast {
            BroadcastKind::Shuffle => {
                // Listing 3: pair of 32-bit shuffles, modeled as one Shfl.
                code.push(Node::Op(Instr::Shfl { dst: tmp, src: creg, lane }));
            }
            BroadcastKind::SharedMirror => {
                // Listing 2: one lane writes the mirror, everyone reads it.
                let addr = SAddr { base: Some(IR_WARP), imm: self.mirror_word, lane_stride: 0 };
                code.push(Node::Op(Instr::StShared {
                    src: Op::Reg(creg),
                    addr,
                    lane_pred: Some(lane),
                }));
                code.push(Node::Op(Instr::LdShared { dst: tmp, addr }));
            }
        }
        Ok((Op::Reg(tmp), Some(tmp)))
    }

    fn consts_in_cache(&self) -> bool {
        false
    }

    fn row_idx(&mut self, row: &RowRef, code: &mut Vec<Node>) -> CResult<IdxOp> {
        match row {
            RowRef::Fixed(r) => Ok(IdxOp::Imm(*r)),
            RowRef::Slot(s) => {
                let g = (self.iseg_base + *s as usize) as u32;
                // index = ibase + g, then load the per-warp row constant.
                code.push(Node::Op(Instr::Idx(IdxInstr::Add {
                    dst: IR_SCRATCH,
                    a: IdxOp::Reg(IR_IBASE),
                    b: IdxOp::Imm(g),
                })));
                code.push(Node::Op(Instr::Idx(IdxInstr::LdConst {
                    dst: IR_SCRATCH + 1,
                    bank: 0,
                    idx: IdxOp::Reg(IR_SCRATCH),
                })));
                Ok(IdxOp::Reg(IR_SCRATCH + 1))
            }
        }
    }

    fn read_var(&mut self, v: VarId, code: &mut Vec<Node>) -> CResult<(Op, Option<Reg>)> {
        let producer_warp = self.mapping.warp_of[self.producers[v as usize]];
        let from_reg = self.cur_outputs.contains(&v)
            || (producer_warp == self.warp
                && !(self.uniform_reads && self.sched.var_slot[v as usize].is_some()));
        if from_reg {
            match self.home_of(v)? {
                VarHome::Reg(r) => Ok((Op::Reg(VR_VAR + r), None)),
                VarHome::Spill(slot) => {
                    let tmp = self.alloc_temp()?;
                    code.push(Node::Op(Instr::LdLocal { dst: tmp, slot }));
                    Ok((Op::Reg(tmp), Some(tmp)))
                }
            }
        } else {
            let slot = self.sched.var_slot[v as usize].ok_or_else(|| {
                CompileError::Internal(format!("cross-warp var {v} has no shared slot"))
            })?;
            // Warp-indexed shared access (§5.3): the word offset comes from
            // a per-warp index constant so overlaid code stays identical
            // across warps reading different values (Listing 4).
            let g = (self.iseg_base + self.irows_len + self.extra_irows.len()) as u32;
            self.extra_irows.push((slot * WARP_SIZE) as u32);
            code.push(Node::Op(Instr::Idx(IdxInstr::Add {
                dst: IR_SCRATCH,
                a: IdxOp::Reg(IR_IBASE),
                b: IdxOp::Imm(g),
            })));
            code.push(Node::Op(Instr::Idx(IdxInstr::LdConst {
                dst: IR_SCRATCH + 1,
                bank: 0,
                idx: IdxOp::Reg(IR_SCRATCH),
            })));
            // Pipelined schedules need no extra displacement here: IR_IBASE
            // already points at the stage-r segment copy, whose slot-offset
            // entries are pre-displaced into ring entry r.
            let tmp = self.alloc_temp()?;
            code.push(Node::Op(Instr::LdShared {
                dst: tmp,
                addr: SAddr { base: Some(IR_SCRATCH + 1), imm: 0, lane_stride: 1 },
            }));
            Ok((Op::Reg(tmp), Some(tmp)))
        }
    }

    fn write_var(&mut self, v: VarId, val: Op, code: &mut Vec<Node>) -> CResult<()> {
        match self.home_of(v)? {
            VarHome::Reg(r) => code.push(Node::Op(Instr::DMov { dst: VR_VAR + r, src: val })),
            VarHome::Spill(slot) => code.push(Node::Op(Instr::StLocal { src: val, slot })),
        }
        Ok(())
    }

    fn read_local(&mut self, l: u16, _code: &mut Vec<Node>) -> CResult<Op> {
        Ok(Op::Reg(self.local_base + l))
    }

    fn write_local(&mut self, l: u16, val: Op, code: &mut Vec<Node>) -> CResult<()> {
        code.push(Node::Op(Instr::DMov { dst: self.local_base + l, src: val }));
        Ok(())
    }

    fn array_global(&self, array: u16) -> GlobalId {
        GlobalId(array as usize)
    }

    fn ldg(&self) -> bool {
        self.ldg
    }
}

/// Emit the kernel from the scheduled program.
#[allow(clippy::too_many_arguments)]
fn emit(
    dfg: &Dfg,
    mapping: &Mapping,
    sched: &Schedule,
    barriers: &BarrierAssignment,
    options: &CompileOptions,
    arch: &GpuArch,
) -> CResult<Compiled> {
    let w = options.warps;
    let producers = dfg.producers()?;

    // Register budget: leave room for scratch, locals, and an estimate of
    // constant registers.
    let max_locals = dfg.ops.iter().map(|o| o.n_locals as usize).max().unwrap_or(0);
    let per_warp_consts: Vec<usize> = (0..w)
        .map(|wi| {
            dfg.ops
                .iter()
                .enumerate()
                .filter(|(oi, _)| mapping.warp_of[*oi] == wi)
                .map(|(_, o)| o.consts.len())
                .sum()
        })
        .collect();
    let cregs_est = per_warp_consts.iter().max().copied().unwrap_or(0).div_ceil(WARP_SIZE) + 1;
    let budget_total = (arch.max_regs_per_thread.saturating_sub(N_IREGS)) / 2;
    let var_budget = budget_total
        .saturating_sub(N_SCRATCH + max_locals + cregs_est)
        .max(4);

    let uniform_reads = options.uniform_shared_reads
        && !matches!(options.placement, crate::config::Placement::Buffer(_));
    let plans: Vec<RegPlan> = (0..w)
        .map(|wi| plan_registers(dfg, mapping, sched, wi, var_budget, uniform_reads))
        .collect::<CResult<Vec<_>>>()?;

    // --- Pipeline depth (K-stage multi-buffered producer/consumer). ---
    // K > 1 replicates every communicated slot K times and rotates per-
    // stage full/empty barrier pairs so producers may run up to K point
    // sets ahead of consumers. Schedules that already rendezvous the whole
    // CTA (pass barriers), have nothing to communicate, or ablate barriers
    // away fall back to the classic single-buffered protocol. The depth is
    // a *request*: it is lowered to the largest value the arch's barrier
    // file and shared memory can actually host, so an autotuner may probe
    // aggressive depths without tripping resource errors.
    let k_pipe = {
        let mut k = options.pipeline_depth.max(1).min(options.point_iters.max(1) as usize);
        if sched.sync_points.is_empty()
            || !sched.full_barriers.is_empty()
            || options.unsafe_remove_barriers
            || options.point_iters <= 1
        {
            k = 1;
        }
        // K rotated ids per sync-point color plus the K-entry empty ring
        // must fit the barrier file; K copies of every slot must fit SMEM.
        while k > 1
            && ((barriers.barriers_used + 1) * k > arch.named_barriers_per_sm
                || k * sched.n_slots * WARP_SIZE * 8 > arch.shared_per_sm)
        {
            k -= 1;
        }
        k
    };
    let pipelined = k_pipe > 1;

    let mirror_word = (k_pipe * sched.n_slots * WARP_SIZE) as u32;
    let needs_mirror = arch.broadcast == BroadcastKind::SharedMirror;
    let shared_words = k_pipe * sched.n_slots * WARP_SIZE + if needs_mirror { w } else { 0 };

    // Ring-recycling participants: writers fill slots (StoreVar items),
    // readers consume them (sync-point consumer warps). The empty-barrier
    // ring is a rendezvous of exactly this set — pure compute warps are
    // excluded so they cannot be lapped by the pipeline.
    let mut writer_mask = 0u64;
    for (wi, list) in sched.items.iter().enumerate() {
        if list.iter().any(|(_, it)| matches!(it, Item::StoreVar(_))) {
            writer_mask |= 1 << wi;
        }
    }
    let mut reader_mask = 0u64;
    for sp in &sched.sync_points {
        for &cw in &sp.consumer_warps {
            reader_mask |= 1 << cw;
        }
    }
    let reader_only_mask = reader_mask & !writer_mask;
    let ring_expected = (writer_mask | reader_mask).count_ones() as u16;
    // Stage-rotated barrier layout: sync point `s` owns the K ids starting
    // at `of_sync[s] * K`; the buffer-empty ring owns the K ids starting
    // at `barriers_used * K`.
    let empty_base = (barriers.barriers_used * k_pipe) as u8;

    // Walker state.
    let mut cursors = vec![0usize; w];
    let mut body: Vec<Node> = Vec::new();
    let mut const_arrays: Vec<Vec<f64>> = vec![Vec::new(); w];
    let mut iconst_arrays: Vec<Vec<u32>> = vec![Vec::new(); w];
    let mut layout_len = 0usize;
    let mut ilayout_len = 0usize;
    // Which index-constant layout entries hold shared slot offsets (vs
    // global row indices). Pipelined kernels replicate each warp's segment
    // K times with slot entries displaced into ring entry r; row entries
    // must stay identical across copies.
    let mut islot_flags: Vec<bool> = Vec::new();
    let mut stats = CompileStats {
        sync_points: sched.sync_points.len(),
        merged_syncs: sched.merged_syncs,
        barriers_used: barriers.barriers_used,
        shared_slots: sched.n_slots,
        spilled_vars: plans.iter().map(|p| p.n_spill).sum(),
        flop_imbalance: mapping.flop_imbalance(),
        full_barriers: sched.full_barriers.len(),
        ..Default::default()
    };
    let all_mask: u64 = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };

    let emit_ctx = |warp: usize, seg: usize, iseg: usize, max_vr: u16| WsCtx {
        mapping,
        sched,
        plans: &plans,
        warp,
        broadcast: arch.broadcast,
        seg_base: seg,
        iseg_base: iseg,
        irows_len: 0,
        extra_irows: Vec::new(),
        local_base: VR_VAR + max_vr,
        scratch_free: Vec::new(),
        scratch_hwm: 0,
        mirror_word,
        producers: &producers,
        ldg: arch.has_ldg,
        uniform_reads,
        cur_outputs: Vec::new(),
    };
    let max_var_regs = plans.iter().map(|p| p.n_var_regs).max().unwrap_or(0) as u16;

    loop {
        // Find the unfinished warp with the smallest (key, kind) head.
        let mut seed: Option<(usize, u64)> = None;
        for wi in 0..w {
            if cursors[wi] < sched.items[wi].len() {
                let (k, _) = sched.items[wi][cursors[wi]];
                if seed.is_none_or(|(_, sk)| k < sk) {
                    seed = Some((wi, k));
                }
            }
        }
        let Some((seed_w, _)) = seed else { break };
        let (_, seed_item) = sched.items[seed_w][cursors[seed_w]];

        match seed_item {
            Item::FullBarrier(_) => {
                // Every warp's head is this barrier.
                for (wi, c) in cursors.iter_mut().enumerate() {
                    debug_assert!(matches!(sched.items[wi][*c].1, Item::FullBarrier(_)));
                    *c += 1;
                }
                if !options.unsafe_remove_barriers {
                    body.push(Node::Op(Instr::BarSync {
                        bar: barriers.full_barrier,
                        warps: w as u16,
                    }));
                }
            }
            Item::Wait(s) => {
                // Group every warp whose head is the same wait.
                let mut mask = 0u64;
                for wi in 0..w {
                    if cursors[wi] < sched.items[wi].len()
                        && sched.items[wi][cursors[wi]].1 == Item::Wait(s)
                    {
                        mask |= 1 << wi;
                        cursors[wi] += 1;
                    }
                }
                if !options.unsafe_remove_barriers {
                    let sp = &sched.sync_points[s];
                    let warps = sp.warps().len() as u16;
                    let node = if pipelined {
                        Node::Op(Instr::BarSyncStage {
                            base: (usize::from(barriers.of_sync[s]) * k_pipe) as u8,
                            k: k_pipe as u8,
                            warps,
                        })
                    } else {
                        Node::Op(Instr::BarSync { bar: barriers.of_sync[s], warps })
                    };
                    push_guarded(&mut body, mask, all_mask, node);
                }
            }
            Item::Arrive(s) => {
                cursors[seed_w] += 1;
                if !options.unsafe_remove_barriers {
                    let sp = &sched.sync_points[s];
                    let warps = sp.warps().len() as u16;
                    let node = if pipelined {
                        Node::Op(Instr::BarArriveStage {
                            base: (usize::from(barriers.of_sync[s]) * k_pipe) as u8,
                            k: k_pipe as u8,
                            warps,
                        })
                    } else {
                        Node::Op(Instr::BarArrive { bar: barriers.of_sync[s], warps })
                    };
                    push_guarded(&mut body, 1 << seed_w, all_mask, node);
                }
            }
            Item::StoreVar(v) => {
                cursors[seed_w] += 1;
                let slot = sched.var_slot[v as usize].ok_or_else(|| {
                    CompileError::Internal(format!("stored var {v} lacks a slot"))
                })?;
                let addr = if pipelined {
                    SAddr { base: Some(IR_PIPE), imm: (slot * WARP_SIZE) as u32, lane_stride: 1 }
                } else {
                    SAddr::lane((slot * WARP_SIZE) as u32)
                };
                // Async-copy fill (Hopper): when the communicated value is
                // a raw global load, copy global -> shared directly instead
                // of bouncing through the producer's register file.
                let cp_src = if pipelined && arch.has_async_copy {
                    dfg.ops[producers[v as usize]].body.iter().find_map(|st| match st {
                        Stmt::DefVar(dv, Expr::Input { array, row: RowRef::Fixed(r) })
                            if *dv == v =>
                        {
                            Some((*array, *r))
                        }
                        _ => None,
                    })
                } else {
                    None
                };
                if let Some((array, row)) = cp_src {
                    let node = Node::Op(Instr::CpAsync {
                        addr,
                        array: GlobalId(array as usize),
                        row: IdxOp::Imm(row),
                        point: PointRef::Lane,
                    });
                    push_guarded(&mut body, 1 << seed_w, all_mask, node);
                } else {
                    let mut code = Vec::new();
                    let mut ctx = emit_ctx(seed_w, 0, 0, max_var_regs);
                    // The value must come from its register/spill home — the
                    // shared slot is exactly what this item is about to fill.
                    ctx.cur_outputs = vec![v];
                    let (src, tmp) = ctx.read_var(v, &mut code)?;
                    code.push(Node::Op(Instr::StShared { src, addr, lane_pred: None }));
                    if let Some(t) = tmp {
                        ctx.free_temp(t);
                    }
                    push_all_guarded(&mut body, 1 << seed_w, all_mask, code);
                }
            }
            Item::Op(seed_op) => {
                // Tentatively emit the seed's code, then try to overlay
                // other warps whose head op has the same skeleton and
                // resolves to identical code (§5.1 + footnote 2).
                let seg = layout_len;
                let iseg = ilayout_len;
                let op = &dfg.ops[seed_op];
                let mut seed_code = Vec::new();
                let seed_extras;
                {
                    let mut ctx = emit_ctx(seed_w, seg, iseg, max_var_regs);
                    ctx.irows_len = op.irows.len();
                    ctx.cur_outputs = op.outputs();
                    emit_stmts(&op.body, &mut ctx, &mut seed_code)?;
                    seed_extras = ctx.extra_irows;
                }
                let mut mask: u64 = 1 << seed_w;
                let mut members: Vec<(usize, OpId, Vec<u32>)> =
                    vec![(seed_w, seed_op, seed_extras)];
                for wi in 0..w {
                    if wi == seed_w || cursors[wi] >= sched.items[wi].len() {
                        continue;
                    }
                    let (_, it) = sched.items[wi][cursors[wi]];
                    let Item::Op(cand) = it else { continue };
                    if !dfg.ops[cand].same_skeleton(op) {
                        continue;
                    }
                    let mut cand_code = Vec::new();
                    let mut ctx = emit_ctx(wi, seg, iseg, max_var_regs);
                    ctx.irows_len = dfg.ops[cand].irows.len();
                    ctx.cur_outputs = dfg.ops[cand].outputs();
                    emit_stmts(&dfg.ops[cand].body, &mut ctx, &mut cand_code)?;
                    if cand_code == seed_code {
                        mask |= 1 << wi;
                        members.push((wi, cand, ctx.extra_irows));
                    }
                }
                for (wi, _, _) in &members {
                    cursors[*wi] += 1;
                }
                // Commit constant segments: same offsets for every warp,
                // padding elsewhere (§5.2).
                let clen = op.consts.len();
                let ilen = op.irows.len() + members[0].2.len();
                layout_len += clen;
                ilayout_len += ilen;
                islot_flags.extend(std::iter::repeat_n(false, op.irows.len()));
                islot_flags.extend(std::iter::repeat_n(true, members[0].2.len()));
                for wi in 0..w {
                    let member = members.iter().find(|(mw, _, _)| *mw == wi);
                    match member {
                        Some((_, o, extras)) => {
                            const_arrays[wi].extend_from_slice(&dfg.ops[*o].consts);
                            iconst_arrays[wi].extend_from_slice(&dfg.ops[*o].irows);
                            iconst_arrays[wi].extend_from_slice(extras);
                        }
                        None => {
                            // Padding values (never read by this warp).
                            const_arrays[wi].extend(std::iter::repeat_n(0.0, clen));
                            iconst_arrays[wi].extend(std::iter::repeat_n(0u32, ilen));
                        }
                    }
                }
                if members.len() > 1 {
                    stats.overlay_groups += 1;
                } else {
                    stats.solo_groups += 1;
                }
                push_all_guarded(&mut body, mask, all_mask, seed_code);
            }
        }
    }

    // --- Preamble: lane/warp ids, constant-array bases, striped constant
    // preload (hoisted above the point loop for amortization, §5.2). ---
    let cstride = layout_len.div_ceil(WARP_SIZE) * WARP_SIZE;
    let n_cregs = cstride / WARP_SIZE;
    let istride = ilayout_len;
    let mut preamble: Vec<Node> = vec![
        Node::Op(Instr::Idx(IdxInstr::WarpId { dst: IR_WARP })),
        Node::Op(Instr::Idx(IdxInstr::LaneId { dst: IR_LANE })),
    ];
    if n_cregs > 0 {
        preamble.push(Node::Op(Instr::Idx(IdxInstr::Mul {
            dst: IR_CBASE,
            a: IdxOp::Reg(IR_WARP),
            b: IdxOp::Imm(cstride as u32),
        })));
        preamble.push(Node::Op(Instr::Idx(IdxInstr::Add {
            dst: IR_CBASE,
            a: IdxOp::Reg(IR_CBASE),
            b: IdxOp::Reg(IR_LANE),
        })));
        for j in 0..n_cregs {
            preamble.push(Node::Op(Instr::Idx(IdxInstr::Add {
                dst: IR_SCRATCH,
                a: IdxOp::Reg(IR_CBASE),
                b: IdxOp::Imm((j * WARP_SIZE) as u32),
            })));
            preamble.push(Node::Op(Instr::LdConst {
                dst: VR_CREG + j as Reg,
                bank: 0,
                idx: IdxOp::Reg(IR_SCRATCH),
            }));
        }
    }
    if istride > 0 {
        if pipelined {
            // Anchor of the warp's K stage-segment copies; IR_IBASE itself
            // is rebased to the stage-r copy at the top of each iteration.
            preamble.push(Node::Op(Instr::Idx(IdxInstr::Mul {
                dst: IR_IPIPE,
                a: IdxOp::Reg(IR_WARP),
                b: IdxOp::Imm((istride * k_pipe) as u32),
            })));
        } else {
            preamble.push(Node::Op(Instr::Idx(IdxInstr::Mul {
                dst: IR_IBASE,
                a: IdxOp::Reg(IR_WARP),
                b: IdxOp::Imm(istride as u32),
            })));
        }
    }

    let mut loop_body;
    if pipelined {
        // K-stage protocol: no end-of-iteration rendezvous. Each iteration
        // selects ring entry `pset % K` (PipeOff), writers block on the
        // entry's buffer-empty barrier (readers freed it K iterations ago),
        // and pure readers signal it free again once their reads are done.
        loop_body = vec![Node::Op(Instr::Idx(IdxInstr::PipeOff {
            dst: IR_PIPE,
            k: k_pipe as u8,
            stride: (sched.n_slots * WARP_SIZE) as u32,
        }))];
        if istride > 0 {
            // Rebase IR_IBASE to this iteration's stage-segment copy, so
            // every warp-indexed read below is stage-correct for free.
            loop_body.push(Node::Op(Instr::Idx(IdxInstr::PipeOff {
                dst: IR_IBASE,
                k: k_pipe as u8,
                stride: istride as u32,
            })));
            loop_body.push(Node::Op(Instr::Idx(IdxInstr::Add {
                dst: IR_IBASE,
                a: IdxOp::Reg(IR_IBASE),
                b: IdxOp::Reg(IR_IPIPE),
            })));
        }
        push_guarded(
            &mut loop_body,
            writer_mask,
            all_mask,
            Node::Op(Instr::BarSyncStage {
                base: empty_base,
                k: k_pipe as u8,
                warps: ring_expected,
            }),
        );
        loop_body.extend(body);
        if reader_only_mask != 0 {
            push_guarded(
                &mut loop_body,
                reader_only_mask,
                all_mask,
                Node::Op(Instr::BarArriveStage {
                    base: empty_base,
                    k: k_pipe as u8,
                    warps: ring_expected,
                }),
            );
        }
    } else {
        // End-of-iteration barrier so shared slots can be reused by the
        // next point set without racing ahead.
        loop_body = body;
        if !sched.sync_points.is_empty()
            && !options.unsafe_remove_barriers
            && options.point_iters > 1
        {
            loop_body
                .push(Node::Op(Instr::BarSync { bar: barriers.full_barrier, warps: w as u16 }));
        }
    }
    let mut full_body = preamble;
    if pipelined && reader_only_mask != 0 {
        // Prologue: every ring entry starts out free — pure readers
        // pre-arrive once per entry so writers' first K iterations do not
        // block on reads that never happened.
        for r in 0..k_pipe {
            push_guarded(
                &mut full_body,
                reader_only_mask,
                all_mask,
                Node::Op(Instr::BarArrive {
                    bar: empty_base + r as u8,
                    warps: ring_expected,
                }),
            );
        }
    }
    full_body.push(Node::PointLoop { iters: options.point_iters, body: loop_body });
    if pipelined && reader_only_mask != 0 {
        // Epilogue: drain the readers' final free-signals so every barrier
        // ends a completed generation (no dangling arrivals).
        for r in 0..k_pipe {
            push_guarded(
                &mut full_body,
                writer_mask,
                all_mask,
                Node::Op(Instr::BarSync { bar: empty_base + r as u8, warps: ring_expected }),
            );
        }
    }

    // --- Register remap: scratch | locals | vars | cregs. ---
    let n_locals_regs = max_locals;
    let n_var_regs = max_var_regs as usize;
    let var_base = N_SCRATCH as Reg;
    // locals were emitted at VR_VAR + max_var_regs + l.
    let creg_base = (N_SCRATCH + n_var_regs + n_locals_regs) as Reg;
    let remap = |r: Reg| -> Reg {
        if r >= VR_CREG {
            creg_base + (r - VR_CREG)
        } else if r >= VR_VAR + max_var_regs {
            // local
            var_base + n_var_regs as Reg + (r - VR_VAR - max_var_regs)
        } else if r >= VR_VAR {
            var_base + (r - VR_VAR)
        } else {
            r
        }
    };
    remap_nodes(&mut full_body, &remap);

    let dregs = N_SCRATCH + n_var_regs + n_locals_regs + n_cregs;
    let n_spill = plans.iter().map(|p| p.n_spill).max().unwrap_or(0);

    // Constant banks: warp-major with per-warp stride.
    let mut bank = vec![0.0f64; cstride * w];
    for (wi, arr) in const_arrays.iter().enumerate() {
        bank[wi * cstride..wi * cstride + arr.len()].copy_from_slice(arr);
    }
    let mut ibank = vec![0u32; istride * w * k_pipe];
    for (wi, arr) in iconst_arrays.iter().enumerate() {
        for r in 0..k_pipe {
            // Stage-r copy of the warp's segment: shared slot offsets are
            // pre-displaced into ring entry r; global row indices repeat
            // verbatim (K = 1 degenerates to the classic flat layout).
            let base = (wi * k_pipe + r) * istride;
            for (j, &v) in arr.iter().enumerate() {
                ibank[base + j] = if islot_flags[j] {
                    v + (r * sched.n_slots * WARP_SIZE) as u32
                } else {
                    v
                };
            }
        }
    }

    stats.const_regs_per_thread = n_cregs;
    stats.const_array_len = cstride;
    let kernel_barriers = if pipelined {
        // K rotated ids per sync-point color plus the K-entry empty ring.
        // The depth clamp above already bounded this by the barrier file.
        let n = (barriers.barriers_used + 1) * k_pipe;
        if n > arch.named_barriers_per_sm {
            return Err(CompileError::ResourceExhausted(format!(
                "pipeline depth {} needs {} named barriers ({} sync colors + the empty \
                 ring) but {} has only {}",
                k_pipe, n, barriers.barriers_used, arch.name, arch.named_barriers_per_sm
            )));
        }
        n
    } else {
        let uses_full = !sched.full_barriers.is_empty()
            || (!sched.sync_points.is_empty()
                && !options.unsafe_remove_barriers
                && options.point_iters > 1);
        (barriers.barriers_used + usize::from(uses_full)).max(1).min(arch.named_barriers_per_sm)
    };
    stats.barriers_used = kernel_barriers;
    stats.pipeline_depth = k_pipe;

    let kernel = Kernel {
        name: format!("{}_ws", dfg.name),
        body: full_body,
        warps_per_cta: w,
        points_per_cta: WARP_SIZE * options.point_iters as usize,
        dregs_per_thread: dregs,
        iregs_per_thread: if pipelined { N_IREGS + 2 } else { N_IREGS },
        shared_words,
        local_words_per_thread: n_spill,
        const_banks: if bank.is_empty() { vec![] } else { vec![bank] },
        iconst_banks: if ibank.is_empty() { vec![] } else { vec![ibank] },
        barriers_used: kernel_barriers,
        global_arrays: dfg.arrays.clone(),
        spilled_bytes_per_thread: n_spill * 8,
        exp_const_from_registers: options.exp_const_from_registers,
    };
    kernel.check().map_err(CompileError::Internal)?;
    Ok(Compiled { kernel, stats })
}

/// Push a node, guarded by a `WarpIf` unless every warp participates.
fn push_guarded(body: &mut Vec<Node>, mask: u64, all: u64, node: Node) {
    if mask == all {
        body.push(node);
    } else {
        body.push(Node::WarpIf { mask, body: vec![node] });
    }
}

/// Push a code block, guarded unless all warps participate.
fn push_all_guarded(body: &mut Vec<Node>, mask: u64, all: u64, code: Vec<Node>) {
    if code.is_empty() {
        return;
    }
    if mask == all {
        body.extend(code);
    } else {
        body.push(Node::WarpIf { mask, body: code });
    }
}

/// Rewrite every register id in a node tree.
pub(crate) fn remap_nodes(nodes: &mut [Node], f: &dyn Fn(Reg) -> Reg) {
    for n in nodes.iter_mut() {
        match n {
            Node::Op(i) => remap_instr(i, f),
            Node::WarpIf { body, .. } => remap_nodes(body, f),
            Node::WarpSwitch { cases, .. } => {
                for c in cases {
                    remap_nodes(c, f);
                }
            }
            Node::Loop { body, .. } | Node::PointLoop { body, .. } => remap_nodes(body, f),
        }
    }
}

fn remap_op(o: &mut Op, f: &dyn Fn(Reg) -> Reg) {
    if let Op::Reg(r) = o {
        *r = f(*r);
    }
}

fn remap_instr(i: &mut Instr, f: &dyn Fn(Reg) -> Reg) {
    match i {
        Instr::DMov { dst, src } => {
            *dst = f(*dst);
            remap_op(src, f);
        }
        Instr::DAdd { dst, a, b }
        | Instr::DSub { dst, a, b }
        | Instr::DMul { dst, a, b }
        | Instr::DDiv { dst, a, b }
        | Instr::DMax { dst, a, b }
        | Instr::DMin { dst, a, b }
        | Instr::DPow { dst, a, b } => {
            *dst = f(*dst);
            remap_op(a, f);
            remap_op(b, f);
        }
        Instr::DCmp { dst, a, b, .. } => {
            *dst = f(*dst);
            remap_op(a, f);
            remap_op(b, f);
        }
        Instr::DFma { dst, a, b, c, .. } => {
            *dst = f(*dst);
            remap_op(a, f);
            remap_op(b, f);
            remap_op(c, f);
        }
        Instr::DSqrt { dst, a }
        | Instr::DExp { dst, a }
        | Instr::DLog { dst, a }
        | Instr::DLog10 { dst, a }
        | Instr::DCbrt { dst, a }
        | Instr::DNeg { dst, a } => {
            *dst = f(*dst);
            remap_op(a, f);
        }
        Instr::DSel { dst, pred, a, b } => {
            *dst = f(*dst);
            *pred = f(*pred);
            remap_op(a, f);
            remap_op(b, f);
        }
        Instr::LdGlobal { dst, .. } => *dst = f(*dst),
        Instr::StGlobal { src, .. } => remap_op(src, f),
        Instr::LdShared { dst, .. } => *dst = f(*dst),
        Instr::StShared { src, .. } => remap_op(src, f),
        Instr::LdConst { dst, .. } => *dst = f(*dst),
        Instr::LdLocal { dst, .. } => *dst = f(*dst),
        Instr::StLocal { src, .. } => remap_op(src, f),
        Instr::Shfl { dst, src, .. } => {
            *dst = f(*dst);
            *src = f(*src);
        }
        Instr::Idx(_)
        | Instr::BarArrive { .. }
        | Instr::BarSync { .. }
        | Instr::BarArriveStage { .. }
        | Instr::BarSyncStage { .. }
        | Instr::CpAsync { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfg::test_support::diamond;
    use gpu_sim::launch::{launch, LaunchInputs, LaunchMode};

    fn run_diamond(warps: usize, arch: &GpuArch) -> Vec<f64> {
        let mut d = diamond();
        if warps >= 3 {
            d.ops[0].pinned_warp = Some(0);
            d.ops[1].pinned_warp = Some(1);
            d.ops[2].pinned_warp = Some(2);
            d.ops[3].pinned_warp = Some(0);
        }
        let mut opts = CompileOptions::with_warps(warps);
        opts.point_iters = 2;
        let c = compile_warp_specialized(&d, &opts, arch, None).unwrap();
        let points = c.kernel.points_per_cta * 2;
        let input: Vec<f64> = (0..points).map(|i| i as f64 * 0.25 + 1.0).collect();
        let out = launch(
            &c.kernel,
            arch,
            &LaunchInputs { arrays: vec![&input, &[]] },
            points,
            LaunchMode::Full,
        )
        .unwrap();
        out.outputs[1].clone()
    }

    fn expected(points: usize) -> Vec<f64> {
        (0..points)
            .map(|i| {
                let x = i as f64 * 0.25 + 1.0;
                x * 2.0 + (x + 10.0)
            })
            .collect()
    }

    #[test]
    fn diamond_single_warp_matches() {
        let arch = GpuArch::kepler_k20c();
        let out = run_diamond(1, &arch);
        assert_eq!(out, expected(out.len()));
    }

    #[test]
    fn diamond_three_warps_matches_kepler() {
        let arch = GpuArch::kepler_k20c();
        let out = run_diamond(3, &arch);
        assert_eq!(out, expected(out.len()));
    }

    #[test]
    fn diamond_three_warps_matches_fermi_shared_mirror() {
        let arch = GpuArch::fermi_c2070();
        let out = run_diamond(3, &arch);
        assert_eq!(out, expected(out.len()));
    }

    #[test]
    fn stats_populated() {
        let mut d = diamond();
        d.ops[0].pinned_warp = Some(0);
        d.ops[1].pinned_warp = Some(1);
        d.ops[2].pinned_warp = Some(2);
        d.ops[3].pinned_warp = Some(0);
        let opts = CompileOptions::with_warps(3);
        let c = compile_warp_specialized(&d, &opts, &GpuArch::kepler_k20c(), None).unwrap();
        assert!(c.stats.sync_points > 0);
        assert!(c.stats.barriers_used >= 1);
        assert!(c.kernel.barriers_used <= 16);
    }
}
