//! Compiler options — the command-line surface of the paper's Figure 8
//! compiler, which the brute-force autotuner drives (§4).

pub use crate::verify::VerifyLevel;

/// How cross-warp dataflow values use shared memory (§4.1's three modes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// *Store*: every communicated value gets its own shared slot for its
    /// whole lifetime (viscosity).
    Store,
    /// *Buffer*: values stay in producer registers; shared memory is a
    /// small recycled buffer written just before consumers read
    /// (chemistry). The payload is the slot-pool size in 32-word slots.
    Buffer(usize),
    /// *Mixed*: like Store, but the slot pool is bounded, forcing recycling
    /// through pass barriers when pressure is high (diffusion).
    Mixed(usize),
}

/// Options for one compilation — every knob is autotunable (§4: "it is
/// valuable for a warp-specializing compiler to generate correct code for
/// any number of warps and choice of mapping decisions").
///
/// Construct with [`CompileOptions::default`], [`CompileOptions::builder`],
/// or [`CompileOptions::with_warps`]; the struct is `#[non_exhaustive]`
/// so new knobs can be added without breaking downstream code.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct CompileOptions {
    /// Warps per CTA to target.
    pub warps: usize,
    /// Streaming point-sets per CTA (the constant-amortization loop, §5.2).
    pub point_iters: u32,
    /// Desired CTAs per SM (bounds shared memory and registers, §4.1).
    pub target_ctas_per_sm: usize,
    /// Mapping metric weight: computational load (FLOPs).
    pub w_flops: f64,
    /// Mapping metric weight: per-warp register balance.
    pub w_regs: f64,
    /// Mapping metric weight: locality (cross-warp edges).
    pub w_locality: f64,
    /// Shared-memory usage mode.
    pub placement: Placement,
    /// Read shared-placed values from shared memory even in their producer
    /// warp (the §3.2 "working set moved to shared memory" discipline —
    /// frees producer registers and keeps overlaid code identical across
    /// warps). Automatically disabled for `Placement::Buffer`.
    pub uniform_shared_reads: bool,
    /// §6.1 ablation: keep the exp Taylor-series constants in registers.
    pub exp_const_from_registers: bool,
    /// §6.2 ablation: unsafely drop all named-barrier synchronization
    /// (results become undefined — timing studies only).
    pub unsafe_remove_barriers: bool,
    /// Post-codegen schedule verification (independent re-check of the
    /// barrier protocol, shared-memory ordering, and resource limits).
    pub verify: VerifyLevel,
    /// Pipeline depth K: how many point-set generations may be in flight
    /// in the shared-memory ring at once. K = 1 is the classic §4.2
    /// single-buffered protocol; K > 1 multi-buffers every communicated
    /// slot and rotates per-stage full/empty barriers so producers run
    /// ahead of consumers (Hopper-style async pipelines). Clamped to
    /// `point_iters`; falls back to 1 when the schedule needs full-CTA
    /// rendezvous or barriers are ablated away.
    pub pipeline_depth: usize,
}

impl Default for CompileOptions {
    fn default() -> CompileOptions {
        CompileOptions {
            warps: 8,
            point_iters: 4,
            target_ctas_per_sm: 2,
            w_flops: 1.0,
            w_regs: 0.5,
            w_locality: 0.25,
            placement: Placement::Store,
            uniform_shared_reads: true,
            exp_const_from_registers: false,
            unsafe_remove_barriers: false,
            verify: VerifyLevel::Basic,
            pipeline_depth: 1,
        }
    }
}

impl CompileOptions {
    /// Convenience: default options with a given warp count.
    pub fn with_warps(warps: usize) -> CompileOptions {
        CompileOptions { warps, ..Default::default() }
    }

    /// Start a fluent builder over the defaults:
    /// `CompileOptions::builder().warps(12).verify(VerifyLevel::Strict).build()`.
    pub fn builder() -> CompileOptionsBuilder {
        CompileOptionsBuilder::default()
    }
}

/// Fluent builder for [`CompileOptions`]. Every setter overrides one field
/// of the defaults; finish with [`CompileOptionsBuilder::build`].
#[derive(Debug, Clone, Default)]
#[must_use = "a builder does nothing until .build() is called"]
pub struct CompileOptionsBuilder {
    opts: CompileOptions,
}

impl CompileOptionsBuilder {
    /// Warps per CTA to target.
    pub fn warps(mut self, warps: usize) -> Self {
        self.opts.warps = warps;
        self
    }

    /// Streaming point-sets per CTA (§5.2 constant amortization).
    pub fn point_iters(mut self, point_iters: u32) -> Self {
        self.opts.point_iters = point_iters;
        self
    }

    /// Desired CTAs per SM.
    pub fn target_ctas_per_sm(mut self, n: usize) -> Self {
        self.opts.target_ctas_per_sm = n;
        self
    }

    /// Mapping metric weight: computational load (FLOPs).
    pub fn w_flops(mut self, w: f64) -> Self {
        self.opts.w_flops = w;
        self
    }

    /// Mapping metric weight: per-warp register balance.
    pub fn w_regs(mut self, w: f64) -> Self {
        self.opts.w_regs = w;
        self
    }

    /// Mapping metric weight: locality (cross-warp edges).
    pub fn w_locality(mut self, w: f64) -> Self {
        self.opts.w_locality = w;
        self
    }

    /// Shared-memory usage mode.
    pub fn placement(mut self, placement: Placement) -> Self {
        self.opts.placement = placement;
        self
    }

    /// §3.2 uniform-shared-reads discipline.
    pub fn uniform_shared_reads(mut self, on: bool) -> Self {
        self.opts.uniform_shared_reads = on;
        self
    }

    /// §6.1 ablation: keep exp Taylor constants in registers.
    pub fn exp_const_from_registers(mut self, on: bool) -> Self {
        self.opts.exp_const_from_registers = on;
        self
    }

    /// §6.2 ablation: unsafely drop named-barrier synchronization.
    pub fn unsafe_remove_barriers(mut self, on: bool) -> Self {
        self.opts.unsafe_remove_barriers = on;
        self
    }

    /// Post-codegen schedule verification level.
    pub fn verify(mut self, level: VerifyLevel) -> Self {
        self.opts.verify = level;
        self
    }

    /// Pipeline depth K (multi-buffered producer/consumer generations).
    pub fn pipeline_depth(mut self, k: usize) -> Self {
        self.opts.pipeline_depth = k;
        self
    }

    /// Finish, yielding the configured [`CompileOptions`].
    pub fn build(self) -> CompileOptions {
        self.opts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let o = CompileOptions::default();
        assert!(o.warps >= 2);
        assert!(o.point_iters >= 1);
        assert!(!o.unsafe_remove_barriers);
        assert_eq!(o.pipeline_depth, 1);
    }

    #[test]
    fn builder_sets_pipeline_depth() {
        let o = CompileOptions::builder().pipeline_depth(3).build();
        assert_eq!(o.pipeline_depth, 3);
    }

    #[test]
    fn with_warps_overrides_only_warps() {
        let o = CompileOptions::with_warps(12);
        assert_eq!(o.warps, 12);
        assert_eq!(o.target_ctas_per_sm, CompileOptions::default().target_ctas_per_sm);
    }

    #[test]
    fn builder_overrides_compose() {
        let o = CompileOptions::builder()
            .warps(16)
            .point_iters(2)
            .placement(Placement::Buffer(96))
            .w_locality(1.0)
            .verify(VerifyLevel::Strict)
            .build();
        assert_eq!(o.warps, 16);
        assert_eq!(o.point_iters, 2);
        assert_eq!(o.placement, Placement::Buffer(96));
        assert_eq!(o.w_locality, 1.0);
        assert_eq!(o.verify, VerifyLevel::Strict);
        // Untouched knobs keep their defaults.
        let d = CompileOptions::default();
        assert_eq!(o.uniform_shared_reads, d.uniform_shared_reads);
        assert_eq!(o.w_flops, d.w_flops);
    }
}
