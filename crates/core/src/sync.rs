//! Named-barrier placement and scheduling (paper §4.2).
//!
//! Implements the paper's deadlock-free discipline (Theorem 1):
//!
//! 1. every cross-warp data dependence is tagged as a *synchronization
//!    point* (producer arrives, consumers wait);
//! 2. synchronization points inherit a partial order from transitive data
//!    dependences;
//! 3. the partial order is linearized into a total order (we use the
//!    phase-major topological position of the producing op);
//! 4. each warp's operations are scheduled consistently with both its data
//!    dependences and the sync-point total order — every warp's item list
//!    is sorted by a single global key, which *is* a linearization of the
//!    DAG, so the Theorem 1 argument applies directly.
//!
//! The module also implements the paper's schedule transformations
//! (hoisting arrives, grouping sync points for bulk communication), the
//! shared-memory slot allocator that realizes the Store / Buffer / Mixed
//! strategies of §4.1 (inserting full-CTA *pass barriers* when a bounded
//!  pool must recycle slots — the chemistry kernel's "exchanged in passes"),
//! and the §6.2 unsafe barrier-removal ablation hook.

use crate::config::{CompileOptions, Placement};
use crate::dfg::{Dfg, OpId};
use crate::expr::VarId;
use crate::mapping::{Mapping, VarPlace};
use crate::{CResult, CompileError};

/// Synchronization point id (its position in the total order).
pub type SyncId = usize;

/// A synchronization point: one producer op communicating one or more
/// values to a fixed set of consumer warps.
#[derive(Debug, Clone)]
pub struct SyncPoint {
    /// Total-order id.
    pub id: SyncId,
    /// Vars communicated.
    pub vars: Vec<VarId>,
    /// Producing op.
    pub producer_op: OpId,
    /// Producer warp.
    pub producer_warp: usize,
    /// Consumer warps (sorted, producer excluded).
    pub consumer_warps: Vec<usize>,
    /// Key of the producer's arrive event.
    pub arrive_key: u64,
    /// Key at which every consumer blocks (all waits of a sync point share
    /// one key — the total-order discipline of Theorem 1). The barrier
    /// *completes* here, which is what the §4.2 allocation colors over.
    pub wait_key: u64,
    /// Key of the latest consumer *read* (shared-slot lifetime, not
    /// barrier lifetime).
    pub last_wait_key: u64,
}

impl SyncPoint {
    /// All participating warps (producer + consumers).
    pub fn warps(&self) -> Vec<usize> {
        let mut w = self.consumer_warps.clone();
        w.push(self.producer_warp);
        w.sort_unstable();
        w.dedup();
        w
    }
}

/// A schedule item for one warp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Item {
    /// Execute an operation.
    Op(OpId),
    /// Store a var's value into its shared slot (producer side).
    StoreVar(VarId),
    /// Non-blocking arrive on a sync point's barrier (producer side).
    Arrive(SyncId),
    /// Blocking wait on a sync point's barrier (consumer side).
    Wait(SyncId),
    /// Full-CTA pass barrier (slot recycling / barrier-pressure reset).
    FullBarrier(usize),
}

/// Complete schedule: per-warp item lists plus communication metadata.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Per-warp `(key, item)` lists, sorted by key.
    pub items: Vec<Vec<(u64, Item)>>,
    /// Sync points in total order.
    pub sync_points: Vec<SyncPoint>,
    /// Shared slot of each var (32-word slots), if communicated.
    pub var_slot: Vec<Option<usize>>,
    /// Number of distinct shared slots used.
    pub n_slots: usize,
    /// Keys of full-CTA pass barriers.
    pub full_barriers: Vec<u64>,
    /// Sync points merged away by the grouping transformation (§4.2).
    pub merged_syncs: usize,
    /// Sync points subsumed by a full-CTA barrier lying between their
    /// arrive and wait (the pairwise barrier is redundant: the pass
    /// barrier already orders the store before every read). Their
    /// arrive/wait items are not emitted.
    pub subsumed: Vec<bool>,
}

const STRIDE: u64 = 16;

/// Build the schedule for a mapped dataflow graph.
///
/// `max_live_syncs` is the number of named-barrier colors the target
/// architecture offers pairwise sync points (its barrier-file size minus
/// the one barrier reserved for full-CTA pass barriers). The pressure
/// pass inserts a pass barrier whenever that many sync points are live at
/// once, so the §4.2 allocation is guaranteed to succeed. Fermi/Kepler
/// class parts pass 15; a Hopper-class 64-entry barrier file passes 63
/// and consequently almost never needs pressure barriers, which is what
/// lets K-stage pipelining engage on production-size mechanisms.
pub fn schedule(
    dfg: &Dfg,
    mapping: &Mapping,
    options: &CompileOptions,
    max_live_syncs: usize,
) -> CResult<Schedule> {
    let prod = dfg.producers()?;
    let consumers = dfg.consumers();
    let topo = dfg.topo_order()?;
    let mut pos = vec![0u64; dfg.ops.len()];
    for (i, &o) in topo.iter().enumerate() {
        pos[o] = (i as u64 + 1) * STRIDE;
    }

    // --- Sync points: group shared vars by (producer op, consumer set). ---
    #[derive(Clone)]
    struct Pending {
        vars: Vec<VarId>,
        producer_op: OpId,
        consumer_warps: Vec<usize>,
        store_key: u64,
        first_wait_pos: u64,
    }
    let mut pending: Vec<Pending> = Vec::new();
    for v in 0..dfg.n_vars as usize {
        if mapping.var_place[v] != VarPlace::Shared {
            continue;
        }
        let p_op = prod[v];
        let p_warp = mapping.warp_of[p_op];
        let mut cw: Vec<usize> = consumers[v]
            .iter()
            .map(|&c| mapping.warp_of[c])
            .filter(|&w| w != p_warp)
            .collect();
        cw.sort_unstable();
        cw.dedup();
        let first_cons_pos = consumers[v]
            .iter()
            .filter(|&&c| cw.is_empty() || mapping.warp_of[c] != p_warp)
            .map(|&c| pos[c])
            .min()
            .unwrap_or(pos[p_op] + 8);
        // Store placement: right after the producer (Store/Mixed) or lazily
        // just before the first consumer (Buffer — the value lingers in
        // producer registers, §4.1).
        let store_key = match options.placement {
            Placement::Buffer(_) => first_cons_pos.saturating_sub(8),
            _ => pos[p_op] + 4,
        }
        .max(pos[p_op] + 4);
        match pending.iter_mut().find(|g| {
            g.producer_op == p_op && g.consumer_warps == cw && g.store_key == store_key
        }) {
            Some(g) => {
                g.vars.push(v as VarId);
                g.first_wait_pos = g.first_wait_pos.min(first_cons_pos);
            }
            None => pending.push(Pending {
                vars: vec![v as VarId],
                producer_op: p_op,
                consumer_warps: cw,
                store_key,
                first_wait_pos: first_cons_pos,
            }),
        }
    }
    pending.sort_by_key(|g| (g.store_key, g.producer_op));

    // --- Grouping transformation (§4.2): "multiple synchronization points
    // between common sets of warps can be grouped together. This allows for
    // bulk communication through shared memory between warps and reduces
    // the total number of named barrier synchronizations."
    //
    // Two sync points with the same producer warp and consumer set merge
    // (one arrive at the later store) when:
    //  * the producer warp performs no blocking wait between the two
    //    stores (delaying the arrive past one of its own waits could
    //    close a dependence cycle), and
    //  * every consumer's first read still comes after the merged arrive.
    // Wait sites per warp are taken from the unmerged sync list (a
    // conservative superset).
    let mut wait_sites: Vec<Vec<u64>> = vec![Vec::new(); options.warps];
    for g in &pending {
        for &cw in &g.consumer_warps {
            let site = g
                .vars
                .iter()
                .flat_map(|&v| consumers[v as usize].iter())
                .filter(|&&c| mapping.warp_of[c] == cw)
                .map(|&c| pos[c])
                .min();
            if let Some(sitep) = site {
                wait_sites[cw].push(sitep.saturating_sub(4));
            }
        }
    }
    for ws in &mut wait_sites {
        ws.sort_unstable();
    }
    let has_wait_between = |warp: usize, lo: u64, hi: u64| -> bool {
        wait_sites[warp].iter().any(|&k| k > lo && k <= hi)
    };
    let mut merged_syncs = 0usize;
    let mut groups: Vec<Pending> = Vec::new();
    for g in pending {
        let pw = mapping.warp_of[g.producer_op];
        let target = groups.iter_mut().rev().find(|last| {
            let lw = mapping.warp_of[last.producer_op];
            let lo = last.store_key.min(g.store_key);
            let hi = last.store_key.max(g.store_key);
            lw == pw
                && last.consumer_warps == g.consumer_warps
                && !has_wait_between(pw, lo, hi)
                && last.first_wait_pos.min(g.first_wait_pos) > hi + 1
        });
        if let Some(last) = target {
            last.vars.extend_from_slice(&g.vars);
            last.store_key = last.store_key.max(g.store_key);
            last.first_wait_pos = last.first_wait_pos.min(g.first_wait_pos);
            merged_syncs += 1;
        } else {
            groups.push(g);
        }
    }
    groups.sort_by_key(|g| (g.store_key, g.producer_op));

    // Split off store-only groups: frontend-forced shared values with no
    // cross-warp consumer need a slot and a store, but no barrier (the
    // producing warp's own program order covers the read-after-write).
    let store_groups: Vec<Pending> =
        groups.iter().filter(|g| g.consumer_warps.is_empty()).cloned().collect();
    groups.retain(|g| !g.consumer_warps.is_empty());

    let consumers_ref = &consumers;
    let sync_points: Vec<SyncPoint> = groups
        .iter()
        .enumerate()
        .map(|(id, g)| {
            let pw = mapping.warp_of[g.producer_op];
            let last_wait_key = g
                .vars
                .iter()
                .flat_map(|&v| consumers_ref[v as usize].iter())
                .filter(|&&c| mapping.warp_of[c] != pw)
                .map(|&c| pos[c])
                .max()
                .unwrap_or(g.store_key + 1);
            let arrive_key = g.store_key + 1;
            let wait_key = g.first_wait_pos.saturating_sub(4).max(arrive_key + 1);
            SyncPoint {
                id,
                vars: g.vars.clone(),
                producer_op: g.producer_op,
                producer_warp: pw,
                consumer_warps: g.consumer_warps.clone(),
                arrive_key,
                wait_key,
                last_wait_key,
            }
        })
        .collect();

    // --- Per-warp item lists. ---
    let w = options.warps;
    let mut items: Vec<Vec<(u64, Item)>> = vec![Vec::new(); w];
    for (oi, op) in dfg.ops.iter().enumerate() {
        let _ = op;
        items[mapping.warp_of[oi]].push((pos[oi], Item::Op(oi)));
    }
    // Producer-side stores and arrives; consumer-side waits. Stores of a
    // grouped sync keep each var's own producer-adjacent key so values are
    // saved as soon as they exist, while the single arrive covers them all
    // (bulk communication, §4.2).
    for sp in &sync_points {
        let g = &groups[sp.id];
        for &v in &g.vars {
            let vkey = match options.placement {
                Placement::Buffer(_) => g.store_key,
                _ => pos[prod[v as usize]] + 4,
            };
            items[sp.producer_warp].push((vkey, Item::StoreVar(v)));
        }
        items[sp.producer_warp].push((sp.arrive_key, Item::Arrive(sp.id)));
        // Every consumer waits at the SAME key. Scattering a sync point's
        // waits would let a pass barrier fall between them, creating a
        // wait/barrier cycle; a single key per sync point is exactly the
        // paper's total-order discipline (an operation with a lower-
        // numbered synchronization point comes before one with a
        // higher-numbered point).
        for &cw in &sp.consumer_warps {
            items[cw].push((sp.wait_key, Item::Wait(sp.id)));
        }
    }
    for g in &store_groups {
        let pw = mapping.warp_of[g.producer_op];
        for &v in &g.vars {
            items[pw].push((pos[prod[v as usize]] + 4, Item::StoreVar(v)));
        }
    }

    // --- Shared slot allocation (Store / Buffer / Mixed, §4.1). ---
    let budget = match options.placement {
        Placement::Store => usize::MAX,
        Placement::Buffer(n) | Placement::Mixed(n) => n.max(1),
    };
    let mut var_slot: Vec<Option<usize>> = vec![None; dfg.n_vars as usize];
    let mut full_barriers: Vec<u64> = Vec::new();
    // Allocation events in key order: (store_key, var, die_key).
    let mut events: Vec<(u64, VarId, u64)> = Vec::new();
    for sp in &sync_points {
        let g = &groups[sp.id];
        for &v in &g.vars {
            let vkey = match options.placement {
                Placement::Buffer(_) => g.store_key,
                _ => pos[prod[v as usize]] + 4,
            };
            let uniform =
                options.uniform_shared_reads && !matches!(options.placement, Placement::Buffer(_));
            let die = consumers[v as usize]
                .iter()
                .filter(|&&c| uniform || mapping.warp_of[c] != sp.producer_warp)
                .map(|&c| pos[c])
                .max()
                .unwrap();
            events.push((vkey, v, die));
        }
    }
    for g in &store_groups {
        let pw = mapping.warp_of[g.producer_op];
        for &v in &g.vars {
            let vkey = pos[prod[v as usize]] + 4;
            let die = consumers[v as usize].iter().map(|&c| pos[c]).max().unwrap_or(vkey);
            let _ = pw;
            events.push((vkey, v, die));
        }
    }
    events.sort_unstable();
    let mut n_slots = 0usize;
    // (die_key, slot) for live slots; free list for recycled.
    let mut live: Vec<(u64, usize)> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    // Slots only become reusable after a full barrier later than their die
    // key; track slots waiting for a barrier.
    let mut dead_waiting: Vec<(u64, usize)> = Vec::new();
    for (key, v, die) in events {
        // Retire slots whose vars died before an already-inserted barrier.
        let slot = if let Some(s) = free.pop() {
            s
        } else if n_slots < budget {
            n_slots += 1;
            n_slots - 1
        } else {
            // Move dead slots to the waiting list.
            let mut i = 0;
            while i < live.len() {
                if live[i].0 < key {
                    dead_waiting.push(live.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            if dead_waiting.is_empty() {
                return Err(CompileError::ResourceExhausted(format!(
                    "shared slot pool of {budget} exhausted with {} values live",
                    live.len()
                )));
            }
            // Insert a pass barrier just before this store; everything dead
            // before it becomes reusable (all warps have passed their reads).
            let bkey = key.saturating_sub(1);
            full_barriers.push(bkey);
            free.extend(dead_waiting.drain(..).map(|(_, s)| s));
            free.pop().ok_or_else(|| {
                CompileError::ResourceExhausted("no slot freed by pass barrier".into())
            })?
        };
        var_slot[v as usize] = Some(slot);
        live.push((die, slot));
    }

    // --- Barrier-pressure pass: the hardware has a fixed named-barrier
    // file per SM (one entry reserved here for pass barriers). When
    // `max_live_syncs` sync points are live at once, insert a pass
    // barrier *at* the triggering sync's arrive key: every live sync
    // whose wait follows the barrier is subsumed by it (arrive <=
    // barrier <= wait), including the triggering sync itself, so the
    // live set stays within the colors the §4.2 allocation has.
    let mut pressure_subsumed = vec![false; sync_points.len()];
    {
        // Live = (id, wait_key) of unsubsumed syncs not yet released by a
        // full barrier past their completion.
        let mut live: Vec<(usize, u64)> = Vec::new();
        for sp in &sync_points {
            let start = sp.arrive_key.saturating_sub(1);
            live.retain(|&(_, wk)| !full_barriers.iter().any(|&b| b > wk && b <= start));
            if full_barriers
                .iter()
                .any(|&b| b >= sp.arrive_key && b <= sp.wait_key)
            {
                pressure_subsumed[sp.id] = true;
                continue;
            }
            if live.len() >= max_live_syncs.max(1) {
                let bkey = sp.arrive_key;
                full_barriers.push(bkey);
                for &(id, wk) in &live {
                    if wk >= bkey {
                        pressure_subsumed[id] = true;
                    }
                }
                live.retain(|&(_, wk)| wk < bkey);
                // wait_key > arrive_key always, so the trigger is covered.
                pressure_subsumed[sp.id] = true;
                continue;
            }
            live.push((sp.id, sp.wait_key));
        }
        full_barriers.sort_unstable();
        full_barriers.dedup();
    }

    // Subsumption: a sync point whose [arrive, wait] interval contains a
    // full-CTA barrier needs no pairwise barrier at all — the pass barrier
    // orders its stores (all at keys < arrive) before its reads (all at
    // keys > wait). This is both a correctness requirement for the
    // pressure pass above and a §4.2-style barrier-count optimization.
    let subsumed: Vec<bool> = sync_points
        .iter()
        .map(|sp| {
            pressure_subsumed[sp.id]
                || full_barriers
                    .iter()
                    .any(|&b| b >= sp.arrive_key && b <= sp.wait_key)
        })
        .collect();

    for (wi, list) in items.iter_mut().enumerate() {
        list.retain(|(_, it)| match it {
            Item::Arrive(sid) | Item::Wait(sid) => !subsumed[*sid],
            _ => true,
        });
        for (bi, &bk) in full_barriers.iter().enumerate() {
            list.push((bk, Item::FullBarrier(bi)));
        }
        // Sort by key; ties: waits before ops (a consumer op's waits come
        // first), ordered by sync id to respect the total order.
        list.sort_by_key(|(k, it)| (*k, item_rank(it), item_sub(it)));
        let _ = wi;
    }

    Ok(Schedule {
        items,
        sync_points,
        var_slot,
        n_slots,
        full_barriers,
        merged_syncs,
        subsumed,
    })
}

fn item_rank(it: &Item) -> u8 {
    match it {
        Item::FullBarrier(_) => 0,
        Item::Wait(_) => 1,
        Item::Op(_) => 2,
        Item::StoreVar(_) => 3,
        Item::Arrive(_) => 4,
    }
}

fn item_sub(it: &Item) -> u64 {
    match it {
        Item::Wait(s) | Item::Arrive(s) => *s as u64,
        Item::Op(o) => *o as u64,
        Item::StoreVar(v) => *v as u64,
        Item::FullBarrier(b) => *b as u64,
    }
}

impl Schedule {
    /// Sanity check: per-warp keys sorted; waits and arrives reference real
    /// sync points; every op appears exactly once.
    pub fn verify(&self, dfg: &Dfg) -> CResult<()> {
        let mut seen = vec![false; dfg.ops.len()];
        for list in &self.items {
            let mut last = 0u64;
            for (k, it) in list {
                if *k < last {
                    return Err(CompileError::Internal("schedule keys unsorted".into()));
                }
                last = *k;
                match it {
                    Item::Op(o) => {
                        if seen[*o] {
                            return Err(CompileError::Internal(format!("op {o} scheduled twice")));
                        }
                        seen[*o] = true;
                    }
                    Item::Wait(s) | Item::Arrive(s)
                        if *s >= self.sync_points.len() => {
                            return Err(CompileError::Internal("bad sync id".into()));
                        }
                    _ => {}
                }
            }
        }
        if !seen.iter().all(|&s| s) {
            return Err(CompileError::Internal("op missing from schedule".into()));
        }
        Ok(())
    }

    /// Total barrier-participating events (arrives + per-consumer waits +
    /// full barriers across warps) — the §6.2 overhead metric.
    pub fn barrier_events(&self, warps: usize) -> usize {
        self.sync_points
            .iter()
            .filter(|s| !self.subsumed.get(s.id).copied().unwrap_or(false))
            .map(|s| 1 + s.consumer_warps.len())
            .sum::<usize>()
            + self.full_barriers.len() * warps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfg::test_support::diamond;
    use crate::mapping::map_ops;

    fn sched(warps: usize, placement: Placement) -> (Dfg, Mapping, Schedule) {
        let d = diamond();
        let mut opts = CompileOptions::with_warps(warps);
        opts.placement = placement;
        // Spread the diamond across warps deterministically.
        let mut d2 = d.clone();
        if warps >= 3 {
            d2.ops[0].pinned_warp = Some(0);
            d2.ops[1].pinned_warp = Some(1);
            d2.ops[2].pinned_warp = Some(2);
            d2.ops[3].pinned_warp = Some(0);
        }
        let m = map_ops(&d2, &opts).unwrap();
        let s = schedule(&d2, &m, &opts, 15).unwrap();
        s.verify(&d2).unwrap();
        (d2, m, s)
    }

    #[test]
    fn single_warp_has_no_sync_points() {
        let (_, _, s) = sched(1, Placement::Store);
        assert!(s.sync_points.is_empty());
        assert_eq!(s.n_slots, 0);
    }

    #[test]
    fn cross_warp_edges_create_sync_points() {
        let (_, m, s) = sched(3, Placement::Store);
        // v0 flows 0 -> {1,2}; v1 flows 1 -> 0; v2 flows 2 -> 0.
        assert!(!s.sync_points.is_empty());
        let total_vars: usize = s.sync_points.iter().map(|sp| sp.vars.len()).sum();
        assert_eq!(total_vars, m.shared_vars().len());
        // Every shared var has a slot.
        for v in m.shared_vars() {
            assert!(s.var_slot[v as usize].is_some());
        }
    }

    #[test]
    fn sync_points_are_totally_ordered_by_arrive_key() {
        let (_, _, s) = sched(3, Placement::Store);
        for w in s.sync_points.windows(2) {
            assert!(w[0].arrive_key <= w[1].arrive_key);
        }
    }

    #[test]
    fn waits_precede_consuming_ops() {
        let (_, _, s) = sched(3, Placement::Store);
        // In warp 0's list, the waits for v1/v2 must come before op 3.
        let w0 = &s.items[0];
        let op3_idx = w0.iter().position(|(_, it)| *it == Item::Op(3)).unwrap();
        let wait_idxs: Vec<usize> = w0
            .iter()
            .enumerate()
            .filter(|(_, (_, it))| matches!(it, Item::Wait(_)))
            .map(|(i, _)| i)
            .collect();
        assert!(!wait_idxs.is_empty());
        for wi in wait_idxs {
            let (_, Item::Wait(sid)) = w0[wi] else { unreachable!() };
            if s.sync_points[sid].producer_warp != 0 {
                assert!(wi < op3_idx, "wait {sid} after consuming op");
            }
        }
    }

    #[test]
    fn store_placement_gives_every_var_a_slot() {
        let (_, m, s) = sched(3, Placement::Store);
        assert_eq!(s.n_slots, m.shared_vars().len());
        assert!(s.full_barriers.is_empty());
    }

    #[test]
    fn tiny_buffer_pool_forces_pass_barriers() {
        // 3 shared vars, two of them live simultaneously, pool of 2 slots:
        // recycling requires a pass barrier.
        let (_, m, s) = sched(3, Placement::Buffer(2));
        assert_eq!(m.shared_vars().len(), 3);
        assert_eq!(s.n_slots, 2);
        assert!(!s.full_barriers.is_empty());
    }

    #[test]
    fn impossible_buffer_pool_is_an_error() {
        // Two values are simultaneously live; a pool of 1 cannot work.
        let d = diamond();
        let mut d2 = d.clone();
        d2.ops[0].pinned_warp = Some(0);
        d2.ops[1].pinned_warp = Some(1);
        d2.ops[2].pinned_warp = Some(2);
        d2.ops[3].pinned_warp = Some(0);
        let mut opts = CompileOptions::with_warps(3);
        opts.placement = Placement::Buffer(1);
        let m = map_ops(&d2, &opts).unwrap();
        assert!(schedule(&d2, &m, &opts, 15).is_err());
    }

    #[test]
    fn ops_scheduled_exactly_once_across_warps() {
        let (d, _, s) = sched(3, Placement::Store);
        let mut count = 0;
        for list in &s.items {
            count += list.iter().filter(|(_, it)| matches!(it, Item::Op(_))).count();
        }
        assert_eq!(count, d.ops.len());
    }

    #[test]
    fn barrier_events_counted() {
        let (_, _, s) = sched(3, Placement::Store);
        assert!(s.barrier_events(3) >= s.sync_points.len() * 2);
    }
}
