//! The unified compiler front door.
//!
//! Historically each kernel flavor had its own free function with
//! copy-pasted option plumbing. [`Compiler`] replaces all three:
//!
//! ```
//! use singe::{Compiler, CompileOptions, Variant};
//! use gpu_sim::GpuArch;
//! # use singe::dfg::Dfg;
//! # fn demo(dfg: &Dfg) -> singe::CResult<()> {
//! let arch = GpuArch::kepler_k20c();
//! let compiled = Compiler::new(&arch)
//!     .options(CompileOptions::builder().warps(8).build())
//!     .compile(dfg, Variant::WarpSpecialized)?;
//! # let _ = compiled; Ok(())
//! # }
//! ```

use crate::baseline::baseline_impl;
use crate::codegen::{compile_warp_specialized, Compiled, CompileStats};
use crate::config::CompileOptions;
use crate::dfg::Dfg;
use crate::naive::naive_impl;
use crate::CResult;
use gpu_sim::arch::GpuArch;
use gpu_sim::profile::{EventKind, TraceEvent};

/// Which kernel flavor to emit — the three columns of the paper's §6
/// comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Warp-specialized Singe output (§3–§5).
    WarpSpecialized,
    /// Optimized purely data-parallel baseline (§6's comparison point).
    Baseline,
    /// Warp specialization via a naïve top-level warp switch — no
    /// overlaying (Figure 9's strawman).
    Naive,
}

impl Variant {
    /// Stable display name (report tables, JSON).
    pub fn name(&self) -> &'static str {
        match self {
            Variant::WarpSpecialized => "warp-specialized",
            Variant::Baseline => "baseline",
            Variant::Naive => "naive",
        }
    }
}

/// Unified front door over the three kernel compilers: configure once,
/// compile any [`Variant`].
#[derive(Debug, Clone)]
pub struct Compiler {
    arch: GpuArch,
    options: CompileOptions,
}

impl Compiler {
    /// A compiler targeting `arch` with default [`CompileOptions`].
    pub fn new(arch: &GpuArch) -> Compiler {
        Compiler { arch: arch.clone(), options: CompileOptions::default() }
    }

    /// Replace the options (builder-style; returns the configured
    /// compiler).
    #[must_use = "Compiler::options returns the configured compiler"]
    pub fn options(mut self, options: CompileOptions) -> Compiler {
        self.options = options;
        self
    }

    /// The options this compiler will use.
    pub fn options_ref(&self) -> &CompileOptions {
        &self.options
    }

    /// The architecture this compiler targets.
    pub fn arch(&self) -> &GpuArch {
        &self.arch
    }

    /// Compile `dfg` as `variant`.
    ///
    /// All variants return the unified [`Compiled`]; for
    /// [`Variant::Baseline`] the kernel has no mapping/overlay stages, so
    /// only the spill statistic is populated.
    pub fn compile(&self, dfg: &Dfg, variant: Variant) -> CResult<Compiled> {
        self.compile_inner(dfg, variant, None)
    }

    /// [`Compiler::compile`], also recording one wall-clock timing span
    /// per pipeline stage (Figure 8's stages for
    /// [`Variant::WarpSpecialized`]; a single span otherwise) in the same
    /// event format the simulator profiler uses, so compile and simulate
    /// phases can land in one Chrome trace. Spans are diagnostics — their
    /// durations are not deterministic, unlike the profiler's cycle
    /// counters.
    pub fn compile_traced(
        &self,
        dfg: &Dfg,
        variant: Variant,
    ) -> CResult<(Compiled, Vec<TraceEvent>)> {
        let mut spans = Vec::new();
        let compiled = self.compile_inner(dfg, variant, Some(&mut spans))?;
        Ok((compiled, spans))
    }

    /// Predict a compiled kernel's performance for a `grid_points`-point
    /// launch on this compiler's architecture using the static analytical
    /// model ([`crate::perfmodel`]) — no interpretation. The returned
    /// report's `seconds()` is directly comparable to a simulated probe.
    pub fn predict(
        &self,
        kernel: &gpu_sim::isa::Kernel,
        grid_points: usize,
    ) -> CResult<crate::perfmodel::ModelReport> {
        crate::perfmodel::predict(kernel, &self.arch, grid_points)
    }

    /// Model-driven schedule search over the full options space
    /// ([`crate::search`]): beam-search candidates scored by
    /// [`Compiler::predict`]'s model, simulate only the top-K survivors
    /// as the oracle, seeded at this compiler's options. `inputs_for`
    /// supplies probe-launch inputs per candidate kernel, exactly as in
    /// [`crate::autotune::autotune`].
    pub fn search(
        &self,
        dfg: &Dfg,
        budget: &crate::search::SearchBudget,
        probe_points: usize,
        inputs_for: &(dyn Fn(&gpu_sim::isa::Kernel, usize) -> Vec<Vec<f64>> + Sync),
    ) -> CResult<crate::search::SearchResult> {
        crate::search::autotune_search(
            dfg,
            &self.arch,
            &self.options,
            budget,
            probe_points,
            inputs_for,
        )
    }

    fn compile_inner(
        &self,
        dfg: &Dfg,
        variant: Variant,
        spans: Option<&mut Vec<TraceEvent>>,
    ) -> CResult<Compiled> {
        match variant {
            Variant::WarpSpecialized => {
                compile_warp_specialized(dfg, &self.options, &self.arch, spans)
            }
            Variant::Baseline => {
                let mut timer = StageTimer::new(spans);
                let b = baseline_impl(dfg, &self.options, &self.arch)?;
                timer.mark("baseline");
                Ok(Compiled {
                    kernel: b.kernel,
                    stats: CompileStats { spilled_vars: b.spilled_words, ..Default::default() },
                })
            }
            Variant::Naive => {
                let mut timer = StageTimer::new(spans);
                let c = naive_impl(dfg, &self.options, &self.arch)?;
                timer.mark("naive");
                Ok(c)
            }
        }
    }
}

/// Records one wall-clock span per pipeline stage into a [`TraceEvent`]
/// vector (the same format the simulator profiler emits, `cat:
/// "compile"`, timestamps in microseconds since compile start). With no
/// sink attached every call is a no-op.
pub(crate) struct StageTimer<'a> {
    spans: Option<&'a mut Vec<TraceEvent>>,
    start: std::time::Instant,
    prev_us: u64,
}

impl<'a> StageTimer<'a> {
    pub(crate) fn new(spans: Option<&'a mut Vec<TraceEvent>>) -> StageTimer<'a> {
        StageTimer { spans, start: std::time::Instant::now(), prev_us: 0 }
    }

    /// Close the span for the stage that just finished, named `name`.
    pub(crate) fn mark(&mut self, name: &'static str) {
        let Some(spans) = self.spans.as_deref_mut() else { return };
        let now_us = self.start.elapsed().as_micros() as u64;
        spans.push(TraceEvent {
            name: name.into(),
            cat: "compile",
            kind: EventKind::Span,
            ts: self.prev_us,
            dur: now_us.saturating_sub(self.prev_us),
            tid: 0,
        });
        self.prev_us = now_us;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::viscosity::viscosity_dfg;
    use chemkin::reference::tables::ViscosityTables;
    use chemkin::synth;

    fn small_dfg() -> Dfg {
        let m = synth::via_text(&synth::SynthConfig {
            name: "ctest".into(),
            n_species: 6,
            n_reactions: 8,
            n_qssa: 0,
            n_stiff: 0,
            seed: 42,
        });
        viscosity_dfg(&ViscosityTables::build(&m), 4)
    }

    #[test]
    fn front_door_compiles_all_variants() {
        let arch = GpuArch::kepler_k20c();
        let dfg = small_dfg();
        let c = Compiler::new(&arch).options(CompileOptions::builder().warps(4).build());
        for variant in [Variant::WarpSpecialized, Variant::Baseline, Variant::Naive] {
            let out = c.compile(&dfg, variant).unwrap_or_else(|e| panic!("{variant:?}: {e}"));
            assert!(!out.kernel.body.is_empty(), "{variant:?}");
        }
    }

    #[test]
    fn traced_compile_reports_figure8_stages() {
        let arch = GpuArch::kepler_k20c();
        let dfg = small_dfg();
        let c = Compiler::new(&arch).options(CompileOptions::with_warps(4));
        let (_, spans) = c.compile_traced(&dfg, Variant::WarpSpecialized).unwrap();
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            ["validate", "mapping", "schedule", "schedule-verify", "barrier-alloc", "emit",
             "verify"]
        );
        assert!(spans.iter().all(|s| s.cat == "compile" && s.kind == EventKind::Span));
        // Spans tile the timeline: each starts where the previous ended.
        for pair in spans.windows(2) {
            assert_eq!(pair[0].ts + pair[0].dur, pair[1].ts);
        }
    }

    #[test]
    fn variant_names_are_stable() {
        assert_eq!(Variant::WarpSpecialized.name(), "warp-specialized");
        assert_eq!(Variant::Baseline.name(), "baseline");
        assert_eq!(Variant::Naive.name(), "naive");
    }
}
