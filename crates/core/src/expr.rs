//! Scalar expression IR and the instruction emitter.
//!
//! Kernel frontends describe each operation's computation as expression
//! trees over:
//!
//! * op-local temporaries ([`Expr::Local`]),
//! * cross-operation dataflow values ([`Expr::Var`] — the edges of the §4
//!   dataflow graph),
//! * per-instance constants ([`Expr::Const`] — these become the per-warp
//!   constant arrays of §5.2),
//! * structural literals ([`Expr::Lit`] — identical across instances, so
//!   they become immediates),
//! * global-memory inputs ([`Expr::Input`]) whose row may itself be a
//!   per-instance constant ([`RowRef::Slot`] — the warp-indexing scheme of
//!   §5.3).
//!
//! Two operations with equal expression bodies are *structurally identical
//! modulo constants* — exactly the property the overlaying code generator
//! (§5.1) exploits to emit a single code instance for many warps.
//!
//! The emitter lowers statements to `gpu-sim` instructions through an
//! [`EmitCtx`] that decides how constants, dataflow variables, and rows
//! materialize (constant cache vs striped registers with broadcasts;
//! registers vs shared memory; fixed rows vs warp-indexed rows).

use crate::{CResult, CompileError};
use gpu_sim::isa::{Cmp, GAddr, GlobalId, IdxOp, Instr, Node, Op, PointRef, Reg};

/// Op-local temporary id.
pub type LocalId = u16;
/// Cross-operation dataflow value id.
pub type VarId = u32;

/// Row selector for global accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowRef {
    /// Statically known row, identical across instances.
    Fixed(u32),
    /// Per-instance row index — becomes a warp-indexing constant (§5.3).
    Slot(u16),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Negation.
    Neg,
    /// Square root.
    Sqrt,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Log,
    /// Base-10 logarithm.
    Log10,
    /// Cube root.
    Cbrt,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Maximum.
    Max,
    /// Minimum.
    Min,
    /// Power.
    Pow,
    /// Compare greater-than (yields 1.0/0.0).
    CmpGt,
}

/// Ternary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TriOp {
    /// Fused multiply-add `a*b + c`.
    Fma,
    /// Select `if a != 0 { b } else { c }`.
    Sel,
}

/// Scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Op-local temporary.
    Local(LocalId),
    /// Structural literal (identical across op instances).
    Lit(f64),
    /// Per-instance constant slot.
    Const(u16),
    /// Cross-operation dataflow value.
    Var(VarId),
    /// Per-point global-memory input.
    Input {
        /// Frontend array id (maps to a kernel `GlobalId`).
        array: u16,
        /// Row within the array.
        row: RowRef,
    },
    /// Unary application.
    Un(UnOp, Box<Expr>),
    /// Binary application.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Ternary application.
    Tri(TriOp, Box<Expr>, Box<Expr>, Box<Expr>),
}

// The arithmetic builders are deliberately inherent methods rather than
// the std ops traits, so the whole DSL reads uniformly:
// `a.add(b).max(c).exp()`.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// `self + o`.
    pub fn add(self, o: Expr) -> Expr {
        Expr::Bin(BinOp::Add, Box::new(self), Box::new(o))
    }
    /// `self - o`.
    pub fn sub(self, o: Expr) -> Expr {
        Expr::Bin(BinOp::Sub, Box::new(self), Box::new(o))
    }
    /// `self * o`.
    pub fn mul(self, o: Expr) -> Expr {
        Expr::Bin(BinOp::Mul, Box::new(self), Box::new(o))
    }
    /// `self / o`.
    pub fn div(self, o: Expr) -> Expr {
        Expr::Bin(BinOp::Div, Box::new(self), Box::new(o))
    }
    /// `max(self, o)`.
    pub fn max(self, o: Expr) -> Expr {
        Expr::Bin(BinOp::Max, Box::new(self), Box::new(o))
    }
    /// `self ^ o`.
    pub fn pow(self, o: Expr) -> Expr {
        Expr::Bin(BinOp::Pow, Box::new(self), Box::new(o))
    }
    /// `exp(self)`.
    pub fn exp(self) -> Expr {
        Expr::Un(UnOp::Exp, Box::new(self))
    }
    /// `ln(self)`.
    pub fn log(self) -> Expr {
        Expr::Un(UnOp::Log, Box::new(self))
    }
    /// `log10(self)`.
    pub fn log10(self) -> Expr {
        Expr::Un(UnOp::Log10, Box::new(self))
    }
    /// `sqrt(self)`.
    pub fn sqrt(self) -> Expr {
        Expr::Un(UnOp::Sqrt, Box::new(self))
    }
    /// `cbrt(self)`.
    pub fn cbrt(self) -> Expr {
        Expr::Un(UnOp::Cbrt, Box::new(self))
    }
    /// `-self`.
    pub fn neg(self) -> Expr {
        Expr::Un(UnOp::Neg, Box::new(self))
    }
    /// `self * b + c` (explicit FMA).
    pub fn fma(self, b: Expr, c: Expr) -> Expr {
        Expr::Tri(TriOp::Fma, Box::new(self), Box::new(b), Box::new(c))
    }
    /// `if self > o { a } else { b }`.
    pub fn select_gt(self, o: Expr, a: Expr, b: Expr) -> Expr {
        Expr::Tri(
            TriOp::Sel,
            Box::new(Expr::Bin(BinOp::CmpGt, Box::new(self), Box::new(o))),
            Box::new(a),
            Box::new(b),
        )
    }

    /// Approximate double-precision FLOPs of evaluating this tree, using
    /// the same accounting as the simulator's instruction costs.
    pub fn flops(&self) -> usize {
        match self {
            Expr::Local(_) | Expr::Lit(_) | Expr::Const(_) | Expr::Var(_) | Expr::Input { .. } => 0,
            Expr::Un(op, a) => {
                a.flops()
                    + match op {
                        UnOp::Neg => 1,
                        UnOp::Sqrt => 16,
                        UnOp::Exp | UnOp::Log => 24,
                        UnOp::Log10 => 26,
                        UnOp::Cbrt => 28,
                    }
            }
            Expr::Bin(op, a, b) => {
                a.flops()
                    + b.flops()
                    + match op {
                        BinOp::Div => 16,
                        BinOp::Pow => 48,
                        _ => 1,
                    }
            }
            Expr::Tri(op, a, b, c) => {
                a.flops()
                    + b.flops()
                    + c.flops()
                    + match op {
                        TriOp::Fma => 2,
                        TriOp::Sel => 1,
                    }
            }
        }
    }

    /// All `Var` ids referenced (with duplicates).
    pub fn vars(&self, out: &mut Vec<VarId>) {
        match self {
            Expr::Var(v) => out.push(*v),
            Expr::Un(_, a) => a.vars(out),
            Expr::Bin(_, a, b) => {
                a.vars(out);
                b.vars(out);
            }
            Expr::Tri(_, a, b, c) => {
                a.vars(out);
                b.vars(out);
                c.vars(out);
            }
            _ => {}
        }
    }
}

/// A statement of an operation body (SSA-ish: each Local/Var defined once).
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Define an op-local temporary.
    Local(LocalId, Expr),
    /// Define a cross-operation dataflow value.
    DefVar(VarId, Expr),
    /// Store to a global output array.
    Store {
        /// Frontend array id.
        array: u16,
        /// Output row.
        row: RowRef,
        /// Value.
        value: Expr,
    },
}

impl Stmt {
    /// FLOPs of the statement.
    pub fn flops(&self) -> usize {
        match self {
            Stmt::Local(_, e) | Stmt::DefVar(_, e) | Stmt::Store { value: e, .. } => e.flops(),
        }
    }
}

/// A standalone scalar program (sequence of statements) — used by tests and
/// by the baseline compiler's sequential view of a dataflow graph.
#[derive(Debug, Clone, Default)]
pub struct ScalarProgram {
    /// Statements in execution order.
    pub stmts: Vec<Stmt>,
    /// Number of locals used.
    pub n_locals: u16,
}

/// How the emitter materializes the context-dependent leaves.
pub trait EmitCtx {
    /// Point selector for global accesses.
    fn point(&self) -> PointRef;
    /// Allocate a scratch register.
    fn alloc_temp(&mut self) -> CResult<Reg>;
    /// Release a scratch register.
    fn free_temp(&mut self, r: Reg);
    /// Materialize per-instance constant `slot` as an operand (may emit
    /// broadcast/load code). Returns the operand plus the scratch register
    /// the caller must free (if the operand lives in one).
    fn const_op(&mut self, slot: u16, code: &mut Vec<Node>) -> CResult<(Op, Option<Reg>)>;
    /// True if constants come from the constant cache (baseline) rather
    /// than registers (warp-specialized §5.2).
    fn consts_in_cache(&self) -> bool;
    /// Materialize a row reference as an index operand. Any index scratch
    /// register is managed by the context (released on the next `row_idx`).
    fn row_idx(&mut self, row: &RowRef, code: &mut Vec<Node>) -> CResult<IdxOp>;
    /// Read a dataflow variable; same temp-ownership contract as
    /// [`EmitCtx::const_op`].
    fn read_var(&mut self, v: VarId, code: &mut Vec<Node>) -> CResult<(Op, Option<Reg>)>;
    /// Write a dataflow variable.
    fn write_var(&mut self, v: VarId, val: Op, code: &mut Vec<Node>) -> CResult<()>;
    /// Read an op-local temporary.
    fn read_local(&mut self, l: LocalId, code: &mut Vec<Node>) -> CResult<Op>;
    /// Write an op-local temporary.
    fn write_local(&mut self, l: LocalId, val: Op, code: &mut Vec<Node>) -> CResult<()>;
    /// Map a frontend array id to the kernel's global array.
    fn array_global(&self, array: u16) -> GlobalId;
    /// Use LDG texture loads for global reads (Kepler baselines, §6).
    fn ldg(&self) -> bool;
}

/// Emit a list of statements into `code`.
pub fn emit_stmts(stmts: &[Stmt], ctx: &mut dyn EmitCtx, code: &mut Vec<Node>) -> CResult<()> {
    for s in stmts {
        match s {
            Stmt::Local(l, e) => {
                let (op, tmp) = lower(e, ctx, code)?;
                ctx.write_local(*l, op, code)?;
                if let Some(t) = tmp {
                    ctx.free_temp(t);
                }
            }
            Stmt::DefVar(v, e) => {
                let (op, tmp) = lower(e, ctx, code)?;
                ctx.write_var(*v, op, code)?;
                if let Some(t) = tmp {
                    ctx.free_temp(t);
                }
            }
            Stmt::Store { array, row, value } => {
                let (op, tmp) = lower(value, ctx, code)?;
                let ridx = ctx.row_idx(row, code)?;
                code.push(Node::Op(Instr::StGlobal {
                    src: op,
                    addr: GAddr { array: ctx.array_global(*array), row: ridx, point: ctx.point() },
                }));
                if let Some(t) = tmp {
                    ctx.free_temp(t);
                }
            }
        }
    }
    Ok(())
}

/// Depth of an expression tree (used to order operand lowering: lowering
/// the deepest operand first keeps the scratch-register footprint of long
/// accumulation chains constant instead of linear).
fn depth(e: &Expr) -> usize {
    match e {
        Expr::Un(_, a) => 1 + depth(a),
        Expr::Bin(_, a, b) => 1 + depth(a).max(depth(b)),
        Expr::Tri(_, a, b, c) => 1 + depth(a).max(depth(b)).max(depth(c)),
        _ => 0,
    }
}

/// Lower an expression; returns the result operand and the temp register to
/// free (if the result lives in a scratch register owned by this call).
fn lower(e: &Expr, ctx: &mut dyn EmitCtx, code: &mut Vec<Node>) -> CResult<(Op, Option<Reg>)> {
    match e {
        Expr::Lit(v) => Ok((Op::Imm(*v), None)),
        Expr::Local(l) => Ok((ctx.read_local(*l, code)?, None)),
        Expr::Var(v) => ctx.read_var(*v, code),
        Expr::Const(slot) => ctx.const_op(*slot, code),
        Expr::Input { array, row } => {
            let ridx = ctx.row_idx(row, code)?;
            let dst = ctx.alloc_temp()?;
            code.push(Node::Op(Instr::LdGlobal {
                dst,
                addr: GAddr { array: ctx.array_global(*array), row: ridx, point: ctx.point() },
                ldg: ctx.ldg(),
            }));
            Ok((Op::Reg(dst), Some(dst)))
        }
        Expr::Un(op, a) => {
            let (av, at) = lower(a, ctx, code)?;
            let dst = match at {
                Some(t) => t, // reuse the operand's temp
                None => ctx.alloc_temp()?,
            };
            let ins = match op {
                UnOp::Neg => Instr::DNeg { dst, a: av },
                UnOp::Sqrt => Instr::DSqrt { dst, a: av },
                UnOp::Exp => Instr::DExp { dst, a: av },
                UnOp::Log => Instr::DLog { dst, a: av },
                UnOp::Log10 => Instr::DLog10 { dst, a: av },
                UnOp::Cbrt => Instr::DCbrt { dst, a: av },
            };
            code.push(Node::Op(ins));
            Ok((Op::Reg(dst), Some(dst)))
        }
        Expr::Bin(op, a, b) => {
            // FMA fusion: Add(Mul(x, y), c) and Add(c, Mul(x, y)).
            if *op == BinOp::Add {
                if let Expr::Bin(BinOp::Mul, x, y) = &**a {
                    return lower_fma(x, y, b, ctx, code);
                }
                if let Expr::Bin(BinOp::Mul, x, y) = &**b {
                    return lower_fma(x, y, a, ctx, code);
                }
            }
            // Deepest operand first (constant scratch usage on chains).
            let (av, at, bv, bt);
            if depth(a) >= depth(b) {
                (av, at) = lower(a, ctx, code)?;
                (bv, bt) = lower(b, ctx, code)?;
            } else {
                (bv, bt) = lower(b, ctx, code)?;
                (av, at) = lower(a, ctx, code)?;
            }
            let dst = match at {
                Some(t) => t,
                None => match bt {
                    Some(t) => t,
                    None => ctx.alloc_temp()?,
                },
            };
            let ins = match op {
                BinOp::Add => Instr::DAdd { dst, a: av, b: bv },
                BinOp::Sub => Instr::DSub { dst, a: av, b: bv },
                BinOp::Mul => Instr::DMul { dst, a: av, b: bv },
                BinOp::Div => Instr::DDiv { dst, a: av, b: bv },
                BinOp::Max => Instr::DMax { dst, a: av, b: bv },
                BinOp::Min => Instr::DMin { dst, a: av, b: bv },
                BinOp::Pow => Instr::DPow { dst, a: av, b: bv },
                BinOp::CmpGt => Instr::DCmp { dst, cmp: Cmp::Gt, a: av, b: bv },
            };
            code.push(Node::Op(ins));
            // Free whichever operand temp we did not reuse as dst.
            for t in [at, bt].into_iter().flatten() {
                if t != dst {
                    ctx.free_temp(t);
                }
            }
            Ok((Op::Reg(dst), Some(dst)))
        }
        Expr::Tri(TriOp::Fma, a, b, c) => lower_fma(a, b, c, ctx, code),
        Expr::Tri(TriOp::Sel, p, a, b) => {
            let (pv, pt) = lower(p, ctx, code)?;
            let pred = match pv {
                Op::Reg(r) => r,
                Op::Imm(_) => {
                    return Err(CompileError::Internal("select predicate must be a register".into()))
                }
            };
            let (av, at) = lower(a, ctx, code)?;
            let (bv, bt) = lower(b, ctx, code)?;
            let dst = pt.ok_or_else(|| CompileError::Internal("predicate temp expected".into()))?;
            code.push(Node::Op(Instr::DSel { dst, pred, a: av, b: bv }));
            for t in [at, bt].into_iter().flatten() {
                if t != dst {
                    ctx.free_temp(t);
                }
            }
            Ok((Op::Reg(dst), Some(dst)))
        }
    }
}

/// Lower `a*b + c` as a fused multiply-add. Marks the instruction as having
/// a constant-cache operand when `c` (or `b`) is a `Const` slot served from
/// the constant cache (the Kepler throughput limit of §6.1).
fn lower_fma(
    a: &Expr,
    b: &Expr,
    c: &Expr,
    ctx: &mut dyn EmitCtx,
    code: &mut Vec<Node>,
) -> CResult<(Op, Option<Reg>)> {
    let const_c = ctx.consts_in_cache()
        && (matches!(c, Expr::Const(_)) || matches!(b, Expr::Const(_)));
    // Deepest operand first (constant scratch usage on FMA chains).
    let mut ordered: [(usize, usize); 3] =
        [(depth(a), 0), (depth(b), 1), (depth(c), 2)];
    ordered.sort_by_key(|&(d, _)| std::cmp::Reverse(d));
    let mut slots: [Option<(Op, Option<Reg>)>; 3] = [None, None, None];
    for &(_, which) in &ordered {
        let e = match which {
            0 => a,
            1 => b,
            _ => c,
        };
        slots[which] = Some(lower(e, ctx, code)?);
    }
    let (av, at) = slots[0].take().unwrap();
    let (bv, bt) = slots[1].take().unwrap();
    let (cv, ct) = slots[2].take().unwrap();
    let dst = at.or(bt).or(ct).map(Ok).unwrap_or_else(|| ctx.alloc_temp())?;
    code.push(Node::Op(Instr::DFma { dst, a: av, b: bv, c: cv, const_c }));
    for t in [at, bt, ct].into_iter().flatten() {
        if t != dst {
            ctx.free_temp(t);
        }
    }
    Ok((Op::Reg(dst), Some(dst)))
}

/// Evaluate an expression on the host for testing / constant folding.
/// `consts`, `locals`, `vars`, and `input` supply the leaf values.
pub fn eval(
    e: &Expr,
    consts: &[f64],
    locals: &[f64],
    vars: &dyn Fn(VarId) -> f64,
    input: &dyn Fn(u16, &RowRef) -> f64,
) -> f64 {
    match e {
        Expr::Lit(v) => *v,
        Expr::Local(l) => locals[*l as usize],
        Expr::Const(c) => consts[*c as usize],
        Expr::Var(v) => vars(*v),
        Expr::Input { array, row } => input(*array, row),
        Expr::Un(op, a) => {
            let x = eval(a, consts, locals, vars, input);
            match op {
                UnOp::Neg => -x,
                UnOp::Sqrt => x.sqrt(),
                UnOp::Exp => x.exp(),
                UnOp::Log => x.ln(),
                UnOp::Log10 => x.log10(),
                UnOp::Cbrt => x.cbrt(),
            }
        }
        Expr::Bin(op, a, b) => {
            let x = eval(a, consts, locals, vars, input);
            let y = eval(b, consts, locals, vars, input);
            match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
                BinOp::Max => x.max(y),
                BinOp::Min => x.min(y),
                BinOp::Pow => x.powf(y),
                BinOp::CmpGt => {
                    if x > y {
                        1.0
                    } else {
                        0.0
                    }
                }
            }
        }
        Expr::Tri(op, a, b, c) => {
            let x = eval(a, consts, locals, vars, input);
            let y = eval(b, consts, locals, vars, input);
            let z = eval(c, consts, locals, vars, input);
            match op {
                TriOp::Fma => x.mul_add(y, z),
                TriOp::Sel => {
                    if x != 0.0 {
                        y
                    } else {
                        z
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let e = Expr::Lit(2.0).mul(Expr::Lit(3.0)).add(Expr::Lit(1.0));
        let v = eval(&e, &[], &[], &|_| 0.0, &|_, _| 0.0);
        assert_eq!(v, 7.0);
    }

    #[test]
    fn eval_covers_all_ops() {
        let consts = [4.0];
        let e = Expr::Const(0).sqrt().exp().log(); // ln(exp(2)) = 2
        assert!((eval(&e, &consts, &[], &|_| 0.0, &|_, _| 0.0) - 2.0).abs() < 1e-12);
        let e = Expr::Lit(8.0).cbrt();
        assert!((eval(&e, &[], &[], &|_| 0.0, &|_, _| 0.0) - 2.0).abs() < 1e-12);
        let e = Expr::Lit(2.0).pow(Expr::Lit(10.0));
        assert_eq!(eval(&e, &[], &[], &|_| 0.0, &|_, _| 0.0), 1024.0);
        let e = Expr::Lit(5.0).select_gt(Expr::Lit(3.0), Expr::Lit(1.0), Expr::Lit(-1.0));
        assert_eq!(eval(&e, &[], &[], &|_| 0.0, &|_, _| 0.0), 1.0);
        let e = Expr::Lit(100.0).log10();
        assert!((eval(&e, &[], &[], &|_| 0.0, &|_, _| 0.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn flop_counts_follow_instruction_costs() {
        let fma = Expr::Lit(1.0).fma(Expr::Lit(2.0), Expr::Lit(3.0));
        assert_eq!(fma.flops(), 2);
        let exp = Expr::Lit(1.0).exp();
        assert_eq!(exp.flops(), 24);
        let chain = Expr::Lit(1.0).add(Expr::Lit(2.0)).mul(Expr::Lit(3.0));
        assert_eq!(chain.flops(), 2);
    }

    #[test]
    fn structural_equality_ignores_const_values_by_design() {
        // Two ops built from the same code template produce equal bodies —
        // the constants live in per-op tables, not the tree.
        let body1 = Expr::Const(0).mul(Expr::Var(3)).add(Expr::Const(1));
        let body2 = Expr::Const(0).mul(Expr::Var(3)).add(Expr::Const(1));
        assert_eq!(body1, body2);
        let different = Expr::Const(0).mul(Expr::Var(4)).add(Expr::Const(1));
        assert_ne!(body1, different);
    }

    #[test]
    fn vars_collected() {
        let e = Expr::Var(1).add(Expr::Var(2).mul(Expr::Var(1)));
        let mut vs = Vec::new();
        e.vars(&mut vs);
        vs.sort();
        assert_eq!(vs, vec![1, 1, 2]);
    }
}
